#include "activeness/rank_store.hpp"

#include <fstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace adr::activeness {

RankStore::RankStore(std::vector<UserActiveness> users)
    : users_(std::move(users)) {
  reindex();
}

void RankStore::reindex() {
  index_.clear();
  for (std::size_t i = 0; i < users_.size(); ++i) {
    const trace::UserId u = users_[i].user;
    if (u == trace::kInvalidUser) continue;
    if (u >= index_.size()) index_.resize(u + 1, 0);
    index_[u] = i + 1;
  }
}

void RankStore::set(const UserActiveness& ua) {
  if (ua.user == trace::kInvalidUser)
    throw std::invalid_argument("RankStore: invalid user");
  if (ua.user < index_.size() && index_[ua.user] != 0) {
    users_[index_[ua.user] - 1] = ua;
    return;
  }
  users_.push_back(ua);
  if (ua.user >= index_.size()) index_.resize(ua.user + 1, 0);
  index_[ua.user] = users_.size();
}

UserActiveness RankStore::get(trace::UserId user) const {
  if (user < index_.size() && index_[user] != 0) return users_[index_[user] - 1];
  UserActiveness fresh;
  fresh.user = user;
  return fresh;
}

bool RankStore::contains(trace::UserId user) const {
  return user < index_.size() && index_[user] != 0;
}

std::array<std::size_t, kGroupCount> RankStore::group_counts() const {
  std::array<std::size_t, kGroupCount> counts{};
  for (const auto& ua : users_) {
    ++counts[static_cast<std::size_t>(classify(ua))];
  }
  return counts;
}

void RankStore::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("RankStore: cannot write " + path);
  util::CsvWriter w(out);
  w.write_row({"user", "op_has_data", "op_zero", "op_log_phi", "oc_has_data",
               "oc_zero", "oc_log_phi", "last_activity"});
  for (const auto& ua : users_) {
    w.write_row({std::to_string(ua.user), ua.op.has_data ? "1" : "0",
                 ua.op.zero ? "1" : "0",
                 std::to_string(static_cast<double>(ua.op.log_phi)),
                 ua.oc.has_data ? "1" : "0", ua.oc.zero ? "1" : "0",
                 std::to_string(static_cast<double>(ua.oc.log_phi)),
                 std::to_string(ua.last_activity)});
  }
}

RankStore RankStore::load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("RankStore: cannot open " + path);
  util::CsvReader reader(in);
  if (!reader.read_header())
    throw std::runtime_error("RankStore: empty file " + path);
  std::vector<UserActiveness> users;
  while (auto row = reader.next()) {
    if (row->size() != 8)
      throw std::runtime_error("RankStore: malformed row in " + path);
    UserActiveness ua;
    ua.user = static_cast<trace::UserId>(std::stoul((*row)[0]));
    ua.op.has_data = (*row)[1] == "1";
    ua.op.zero = (*row)[2] == "1";
    ua.op.log_phi = std::stold((*row)[3]);
    ua.oc.has_data = (*row)[4] == "1";
    ua.oc.zero = (*row)[5] == "1";
    ua.oc.log_phi = std::stold((*row)[6]);
    ua.last_activity = std::stoll((*row)[7]);
    users.push_back(ua);
  }
  return RankStore(std::move(users));
}

}  // namespace adr::activeness
