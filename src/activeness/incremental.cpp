#include "activeness/incremental.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <iterator>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/thread_pool.hpp"

namespace adr::activeness {

const char* to_string(EvalMode mode) {
  switch (mode) {
    case EvalMode::kAuto: return "auto";
    case EvalMode::kFull: return "full";
    case EvalMode::kIncremental: return "incremental";
  }
  return "?";
}

bool parse_eval_mode(const std::string& text, EvalMode& out) {
  if (text == "auto") {
    out = EvalMode::kAuto;
  } else if (text == "full") {
    out = EvalMode::kFull;
  } else if (text == "incremental") {
    out = EvalMode::kIncremental;
  } else {
    return false;
  }
  return true;
}

namespace {

obs::Counter& advances_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("incremental.advances");
  return c;
}

obs::Counter& full_rebuilds_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("incremental.full_rebuilds");
  return c;
}

obs::Counter& users_dirty_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("incremental.users_dirty");
  return c;
}

obs::Counter& users_reevaluated_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("incremental.users_reevaluated");
  return c;
}

obs::Counter& users_skipped_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("incremental.users_skipped");
  return c;
}

obs::Counter& auto_fallbacks_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("incremental.auto_fallbacks");
  return c;
}

obs::Counter& auto_recoveries_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("incremental.auto_recoveries");
  return c;
}

}  // namespace

IncrementalEvaluator::IncrementalEvaluator(const ActivityCatalog& catalog,
                                           EvaluationParams base_params,
                                           EvalMode mode)
    : catalog_(&catalog),
      base_params_(base_params),
      mode_(mode),
      op_types_(catalog.types_in(ActivityCategory::kOperation)),
      oc_types_(catalog.types_in(ActivityCategory::kOutcome)) {}

IncrementalEvaluator::IncrementalEvaluator(const ActivityCatalog& catalog,
                                           EvaluationParams base_params,
                                           EvalMode mode,
                                           trace::UserId range_begin,
                                           trace::UserId range_end,
                                           std::size_t dirty_shard)
    : IncrementalEvaluator(catalog, base_params, mode) {
  range_begin_ = range_begin;
  range_end_ = range_end;
  ranged_ = true;
  dirty_shard_ = dirty_shard;
}

std::size_t IncrementalEvaluator::range_size(const ActivityStore& store) const {
  return ranged_ ? static_cast<std::size_t>(range_end_ - range_begin_)
                 : store.user_count();
}

std::vector<trace::UserId> IncrementalEvaluator::drain_dirty(
    ActivityStore& store) const {
  return dirty_shard_ == kGlobalDirty ? store.take_dirty()
                                      : store.take_dirty(dirty_shard_);
}

bool IncrementalEvaluator::skippable(const ActivityStore& store,
                                     const UserActiveness& ua,
                                     util::TimePoint now,
                                     bool& durable) const {
  durable = true;
  // No data at all: stays a fresh account until an activity surfaces (and
  // that would have put the user in the delta set).
  if (ua.fresh()) return true;
  const util::Duration plen = util::days(base_params_.period_length_days);

  enum Cert { kNo, kDurable, kTransient };

  // Does `type`'s stream provably evaluate to Φ = 0 at `now`? The stream is
  // unchanged since the cached evaluation (the user is not in the delta
  // set), so each certificate needs only the store's aggregates:
  //  * pigeonhole: m > n — m never shrinks while n is frozen;
  //  * zero total impact: the prefix sum is frozen;
  //  * stale newest period: the last activity strictly predates now − d
  //    (equality lands *inside* the newest period — boundaries are
  //    left-closed);
  //  * static gap: a gap > 2d between consecutive activities contains a
  //    full boundary-aligned period for ANY t_c — the grid has spacing d,
  //    so (ts_i, ts_{i+1} − d] is longer than d and holds a grid point b,
  //    and [b, b + d) ⊂ the gap is empty. Durable as-is when the window is
  //    unbounded; under a max_periods cap P the capped window [t' − P·d, t')
  //    can slide past the gap, EXCEPT when the gap ends recently enough:
  //      ts_{i+1} ≥ ts_{n−1} − (P−4)·d        (P ≥ 4)
  //    Then for every t' up to ts_{n−1} + d the interval of admissible grid
  //    points (max(ts_i, t' − (P−1)·d), ts_{i+1} − d] keeps length ≥ d (so
  //    it holds a grid point and an empty period at depth e ≥ 2, clear of
  //    the kClampOldest tail), and for every later t' the newest period
  //    [t' − d, t') itself is empty because ts_{n−1} has gone stale — the
  //    zero persists at every future trigger (full derivation: DESIGN.md
  //    §9.2). Gaps ending earlier than that stay transient while the window
  //    is uncapped and certify nothing once the cap engages.
  // All but the gap rule are monotone in t_c (m only grows, totals are
  // frozen, the newest activity only recedes), so they persist at every
  // later trigger; the gap rule is monotone exactly in the cases above.
  const auto frozen_zero_type = [&](ActivityTypeId type) -> Cert {
    const auto full = store.stream(ua.user, type);
    const auto it = std::upper_bound(
        full.begin(), full.end(), now,
        [](util::TimePoint t, const Activity& a) { return t < a.timestamp; });
    const auto n = static_cast<std::size_t>(it - full.begin());
    if (n == 0) return kNo;  // no-data factor: neutral, pins nothing
    const util::Duration span = now - full.front().timestamp;
    std::int64_t m = span <= 0 ? 1 : (span + plen - 1) / plen;
    if (m < 1) m = 1;
    const bool capped =
        base_params_.max_periods > 0 && m > base_params_.max_periods;
    if (capped) m = base_params_.max_periods;
    if (m > static_cast<std::int64_t>(n)) return kDurable;
    if (store.prefix(ua.user, type)[n] <= 0.0) return kDurable;
    if (full[n - 1].timestamp < now - plen) return kDurable;
    if (store.max_gap_prefix(ua.user, type)[n] > 2 * plen) {
      if (base_params_.max_periods <= 0) return kDurable;
      const std::int64_t cap = base_params_.max_periods;
      if (cap >= 4) {
        // Find the widest-reaching recent gap: any consecutive pair with
        // its right end at/after the cutoff and a gap > 2d certifies.
        const util::TimePoint cutoff =
            full[n - 1].timestamp - (cap - 4) * plen;
        const auto lo = std::lower_bound(
            full.begin(), full.begin() + static_cast<std::ptrdiff_t>(n),
            cutoff, [](const Activity& a, util::TimePoint t) {
              return a.timestamp < t;
            });
        std::size_t i = static_cast<std::size_t>(lo - full.begin());
        if (i == 0) i = 1;  // pairs need a left neighbour
        for (; i < n; ++i) {
          if (full[i].timestamp - full[i - 1].timestamp > 2 * plen)
            return kDurable;
        }
      }
      if (!capped) return kTransient;  // holds at this t_c; cap may bite
    }
    return kNo;
  };

  // Per category (each must hold; a live positive rank always moves — Eq.
  // 1's m grows with t_c, diluting Avg and shifting every boundary): the
  // cached Φ = 0 persists if ANY contributing stream stays at zero — one
  // zero factor absorbs the whole product, pinning log_phi at 0 exactly as
  // a recompute would. last_activity is unchanged by construction, so the
  // skipped UserActiveness is rank-identical to a full re-evaluation.
  const auto frozen = [&](const Rank& r, std::span<const ActivityTypeId> types) {
    if (!r.has_data) return true;
    if (!r.zero) return false;
    if (r.sticky_zero) return true;  // structural, no stream checks needed
    Cert best = kNo;
    for (const ActivityTypeId t : types) {
      const Cert c = frozen_zero_type(t);
      if (c == kDurable) return true;
      if (c == kTransient) best = kTransient;
    }
    if (best == kTransient) {
      durable = false;
      return true;
    }
    return false;
  };
  return frozen(ua.op, op_types_) && frozen(ua.oc, oc_types_);
}

void IncrementalEvaluator::rebuild(ActivityStore& store, util::TimePoint now) {
  EvaluationParams params = base_params_;
  params.now = now;
  Evaluator evaluator(*catalog_, params);
  if (!ranged_) {
    users_ = evaluator.evaluate_all(store);
  } else {
    users_.resize(range_size(store));
    util::global_pool().parallel_for(0, users_.size(), [&](std::size_t i) {
      users_[i] = evaluator.evaluate_user(
          store, range_begin_ + static_cast<trace::UserId>(i));
    });
  }
  groups_.resize(users_.size());
  for (std::size_t u = 0; u < users_.size(); ++u) {
    groups_[u] = classify(users_[u]);
  }
  plan_ = build_scan_plan(users_);
  frozen_.assign(users_.size(), 0);
  frozen_count_ = 0;
}

AdvanceStats IncrementalEvaluator::advance(ActivityStore& store,
                                           util::TimePoint now) {
  const auto wall0 = std::chrono::steady_clock::now();
  obs::TimerSpan span("incremental.advance");
  AdvanceStats stats;

  if (!store.finalized()) store.sort_all();

  // Apply queued concurrent ingest for this pipeline's slice first: the
  // events land in streams/dirty/chrono exactly as direct appends would
  // have, so everything below sees them as ordinary dirty users. A ranged
  // pipeline drains only its own shard's queue (other shards' queues are
  // their owners' to drain, possibly concurrently).
  if (dirty_shard_ == kGlobalDirty) {
    store.drain_ingest();
  } else {
    store.drain_ingest(dirty_shard_);
  }

  // The chrono shards this pipeline scans for window-revealed users.
  const std::size_t chrono_begin =
      dirty_shard_ == kGlobalDirty ? 0 : dirty_shard_;
  const std::size_t chrono_end = dirty_shard_ == kGlobalDirty
                                     ? store.chrono_shard_count()
                                     : dirty_shard_ + 1;

  const bool resolved_full =
      mode_ == EvalMode::kFull || (mode_ == EvalMode::kAuto && auto_full_);
  const bool continuous = evaluated_ && now >= last_now_ &&
                          users_.size() == range_size(store);
  const bool delta = !resolved_full && continuous;
  // Everything below indexes the instance-local dense vectors by
  // u − range_begin_; in the default full pipeline range_begin_ is 0 and
  // the bounds checks reduce to the pre-sharding user_count guard.
  const trace::UserId base = range_begin_;
  if (!delta) {
    if (mode_ == EvalMode::kAuto && auto_full_ && continuous) {
      // Running full under auto: keep measuring the delta candidate fraction
      // (dirty set + chrono window — cheap, no skip-rule checks) so the
      // pipeline can recover once the storm passes. The dirty set is
      // consumed here; the rebuild below re-evaluates everyone anyway.
      candidate_flags_.assign(users_.size(), 0);
      for (const trace::UserId u : drain_dirty(store)) {
        if (u >= base && u - base < candidate_flags_.size())
          candidate_flags_[u - base] = 1;
      }
      for (std::size_t cs = chrono_begin; cs < chrono_end; ++cs) {
        for (const auto& [ts, u] : store.chrono_window(cs, last_now_, now)) {
          if (u >= base && u - base < candidate_flags_.size())
            candidate_flags_[u - base] = 1;
        }
      }
      for (const std::uint8_t f : candidate_flags_) stats.users_dirty += f;
      if (stats.users_dirty * 4 < users_.size()) {
        if (++calm_streak_ >= kRecoverAfter) {
          auto_full_ = false;
          calm_streak_ = 0;
          hot_streak_ = 0;
          auto_recoveries_counter().add();
        }
      } else {
        calm_streak_ = 0;
      }
    } else {
      // Everything (in range) is re-evaluated; this pipeline's dirty slice
      // is stale by definition. Other shards' queues are not ours to drain.
      drain_dirty(store);
    }
    rebuild(store, now);
    stats.full_rebuild = true;
    stats.users_reevaluated = users_.size();
    full_rebuilds_counter().add();
  } else {
    EvaluationParams params = base_params_;
    params.now = now;
    Evaluator evaluator(*catalog_, params);

    // Delta candidates: streaming appends since the last drain, plus users
    // whose events the advancing trim just revealed (replay stores hold the
    // whole trace up front — time moving forward is what "adds" activity).
    // All the working sets below are instance scratch: the steady-state
    // delta path allocates nothing.
    candidate_flags_.assign(users_.size(), 0);
    reeval_.clear();
    for (const trace::UserId u : drain_dirty(store)) {
      if (u >= base && u - base < candidate_flags_.size())
        candidate_flags_[u - base] = 1;
    }
    for (std::size_t cs = chrono_begin; cs < chrono_end; ++cs) {
      for (const auto& [ts, u] : store.chrono_window(cs, last_now_, now)) {
        if (u >= base && u - base < candidate_flags_.size())
          candidate_flags_[u - base] = 1;
      }
    }
    for (const std::uint8_t f : candidate_flags_) stats.users_dirty += f;

    for (std::size_t i = 0; i < users_.size(); ++i) {
      const trace::UserId u = base + static_cast<trace::UserId>(i);
      if (candidate_flags_[i]) {
        if (frozen_[i]) {  // new activity voids any memoized skip
          frozen_[i] = 0;
          --frozen_count_;
        }
        reeval_.push_back(u);
        continue;
      }
      if (frozen_[i]) continue;  // durable skip: holds until dirty
      bool durable = false;
      if (skippable(store, users_[i], now, durable)) {
        if (durable) {
          frozen_[i] = 1;
          ++frozen_count_;
        }
      } else {
        candidate_flags_[i] = 1;  // marks plan entries to splice out below
        reeval_.push_back(u);
      }
    }
    stats.users_reevaluated = reeval_.size();
    stats.users_skipped = users_.size() - reeval_.size();

    if (mode_ == EvalMode::kAuto && !users_.empty()) {
      // Hysteresis: at/above the rebuild threshold the delta machinery buys
      // nothing — after kFallbackAfter such triggers in a row, resolve auto
      // to full until the candidate fraction calms down again.
      if (reeval_.size() * 2 >= users_.size()) {
        if (++hot_streak_ >= kFallbackAfter) {
          auto_full_ = true;
          hot_streak_ = 0;
          calm_streak_ = 0;
          auto_fallbacks_counter().add();
        }
      } else {
        hot_streak_ = 0;
      }
    }

    updated_.resize(reeval_.size());
    util::global_pool().parallel_for(0, reeval_.size(), [&](std::size_t i) {
      updated_[i] = evaluator.evaluate_user(store, reeval_[i]);
    });

    if (reeval_.size() * 2 >= users_.size()) {
      // Near-full delta: patching costs more than sorting from scratch.
      // Same output either way — scan_less is a strict total order.
      for (std::size_t i = 0; i < reeval_.size(); ++i) {
        users_[reeval_[i] - base] = updated_[i];
        groups_[reeval_[i] - base] = classify(updated_[i]);
      }
      plan_ = build_scan_plan(users_);
    } else if (!reeval_.empty()) {
      // Batched splice: one compaction pass per group vector plus a sorted
      // merge of the incoming entries — O(n + r log r) per trigger instead
      // of r separate O(n) erase/insert memmoves. candidate_flags_ now
      // marks exactly the re-evaluated users (dirty + skip-rule failures).
      for (auto& vec : plan_.groups) {
        vec.erase(std::remove_if(vec.begin(), vec.end(),
                                 [this](const UserActiveness& x) {
                                   return candidate_flags_[x.user -
                                                           range_begin_];
                                 }),
                  vec.end());
      }
      std::array<std::vector<UserActiveness>, kGroupCount> incoming;
      for (std::size_t i = 0; i < reeval_.size(); ++i) {
        const trace::UserId u = reeval_[i];
        users_[u - base] = updated_[i];
        const UserGroup g = classify(updated_[i]);
        groups_[u - base] = g;
        incoming[static_cast<std::size_t>(g)].push_back(updated_[i]);
      }
      for (std::size_t gi = 0; gi < kGroupCount; ++gi) {
        auto& in = incoming[gi];
        if (in.empty()) continue;
        const auto less = [g = static_cast<UserGroup>(gi)](
                              const UserActiveness& a,
                              const UserActiveness& b) {
          return scan_less(g, a, b);
        };
        std::sort(in.begin(), in.end(), less);
        auto& vec = plan_.groups[gi];
        merge_scratch_.clear();
        merge_scratch_.reserve(vec.size() + in.size());
        std::merge(vec.begin(), vec.end(), in.begin(), in.end(),
                   std::back_inserter(merge_scratch_), less);
        vec.swap(merge_scratch_);
      }
    }
  }

  evaluated_ = true;
  last_now_ = now;
  stats.auto_full = auto_full_;

  advances_counter().add();
  users_dirty_counter().add(stats.users_dirty);
  users_reevaluated_counter().add(stats.users_reevaluated);
  users_skipped_counter().add(stats.users_skipped);

  seconds_ += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            wall0)
                  .count();
  return stats;
}

}  // namespace adr::activeness
