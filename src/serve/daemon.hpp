#pragma once
// serve::Daemon — the resident retention service behind `activedr serve`
// (DESIGN.md §13).
//
// A Daemon keeps one core::Service warm and feeds it from the append-only
// event log: every tick it polls the WAL tail, applies the new records,
// answers any control-file commands, and checkpoints on cadence. A purge
// trigger is then a control-file drop, answered from resident rank/index
// state with no trace rescan — the Robinhood changelog idiom applied to the
// paper's activeness pipeline.
//
// Lifecycle:
//
//   start()     recover: newest valid checkpoint bundle (invalid/unsealed
//               ones are skipped — crash mid-checkpoint degrades to the
//               previous one), then position the WAL tailer at the
//               checkpoint's applied seq. No checkpoint: optional seed
//               snapshot, full WAL replay.
//   tick()      poll WAL -> Service::apply (seq-guarded, so replaying an
//               already-applied record is a no-op), process ctl/*.cmd,
//               checkpoint when the cadence says so. Returns false once a
//               stop command (or the external stop flag) was consumed.
//   run()       tick-and-sleep until stopped, then shutdown().
//   shutdown()  graceful exit: drain the WAL, seal the open segment
//               (assumes feeders have quiesced — single-writer log), final
//               checkpoint, final metrics export.
//
// kill -9 at any instant is the covered-by-construction case: in-memory
// state vanishes, disk holds only §10/§10.5 old-or-new artifacts, and the
// next start() reproduces the exact pre-crash state from checkpoint +
// tail replay (byte-identical ranks and victims — see tests/serve).
//
// Control interface: drop `<name>.cmd` into <state_dir>/ctl, a `key =
// value` file ("cmd = trigger|evaluate|checkpoint|status|stop", "now =
// <unix-time>", optional "ranks_out = <path>", "victims_out = <path>").
// The daemon replies with `<name>.out` (same format, "ok = true|false")
// and removes the command file. Replies are written atomically, so a
// waiting client polls for the .out file and never sees a torn reply.
//
// Fault points: serve.post_apply (crash after applying a WAL batch,
// before any checkpoint — forces recovery to re-replay the tail),
// serve.checkpoint.prune (crash between committing checkpoint N and
// removing N-1 — recovery must simply pick the newest valid bundle).
// Checkpoint writes themselves pass through every bundle.* and io.atomic.*
// point.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "activeness/spill.hpp"
#include "core/service.hpp"
#include "serve/health.hpp"
#include "trace/event_log.hpp"
#include "util/backoff.hpp"

namespace adr::serve {

struct DaemonOptions {
  /// Event-log directory the daemon tails (required).
  std::string wal_dir;
  /// Daemon home: checkpoints/ and ctl/ live under it (required).
  std::string state_dir;

  core::ServiceConfig service;

  /// Write a checkpoint after this many newly applied events (0 = only on
  /// explicit `checkpoint` commands and shutdown).
  std::uint64_t checkpoint_every_events = 4096;
  /// Checkpoints retained after a successful new one (>= 1).
  std::size_t keep_checkpoints = 2;

  /// Sleep between run() ticks.
  int poll_interval_ms = 20;
  /// Stop after this many ticks (0 = until stopped) — harness use.
  std::uint64_t max_ticks = 0;
  /// External stop request (signal handlers set it; nullptr = none).
  const std::atomic<bool>* stop_flag = nullptr;

  /// Seed snapshot CSV applied when no usable checkpoint exists ("") —
  /// the scratch state at WAL seq 0.
  std::string snapshot_path;

  /// Periodic metrics export: atomically rewrite this file every
  /// `metrics_every_ticks` ticks and on shutdown ("" = off).
  std::string metrics_out;
  std::uint64_t metrics_every_ticks = 50;

  /// Seal the open WAL segment during graceful shutdown (requires that
  /// feeders have quiesced — the log is single-writer).
  bool seal_wal_on_stop = true;

  /// Bounded per-shard ingest admission for in-process producers feeding
  /// the service store (DESIGN.md §14.1). 0 = unbounded (historical
  /// behaviour). Applied to the store after recovery in start().
  std::size_t ingest_queue_cap = 0;
  /// What enqueue() does at a full shard queue: block the producer, shed
  /// (counted, bounded by shed_budget), or spill to a WAL-backed overflow
  /// segment replayed by tick() when pressure clears.
  activeness::BackpressurePolicy backpressure =
      activeness::BackpressurePolicy::kBlock;
  std::size_t shed_budget = 0;
  /// Spill segment directory for backpressure = spill
  /// ("" = <state_dir>/spill).
  std::string spill_dir;

  /// Trigger watchdog + degradation ladder (DESIGN.md §14.2):
  /// watchdog.trigger_deadline_ms = 0 disables it. On breach the daemon
  /// degrades (pins incremental evaluation) and, if breaches persist,
  /// defers new triggers with jittered backoff — it never dies.
  WatchdogConfig watchdog;

  /// Retry budget for the daemon's own artifact writes — checkpoint
  /// bundles, metrics exports, command replies (DESIGN.md §14.3).
  /// Transient faults (ENOSPC bursts, EINTR, short writes) are retried
  /// with jittered backoff; fatal errors and injected crashes surface
  /// immediately, keeping the crash-recovery path intact.
  /// max_attempts = 1 disables retry.
  util::BackoffPolicy io_retry{.max_attempts = 3,
                               .initial_delay_ms = 1.0,
                               .max_delay_ms = 50.0};
};

class Daemon {
 public:
  /// Registers the paper activity types on the service and forces victim
  /// recording (purge lists are the daemon's product).
  Daemon(trace::UserRegistry registry, DaemonOptions options);

  /// Recover state and position the tailer. Idempotent once succeeded.
  void start();

  /// One scheduler turn; returns false when a stop was requested.
  bool tick();

  /// start() + tick/sleep loop + graceful shutdown(). Returns the exit
  /// code (0 on graceful stop). util::CrashInjected propagates to the
  /// caller — a simulated kill -9 must not run any shutdown path.
  int run();

  /// Graceful shutdown: drain, optionally seal the WAL, final checkpoint
  /// and metrics export.
  void shutdown();

  /// Force a checkpoint now (also invoked by the `checkpoint` command).
  std::string save_checkpoint_now();

  core::Service& service() { return service_; }
  const DaemonOptions& options() const { return options_; }
  std::uint64_t events_applied() const { return events_applied_; }
  bool started() const { return started_; }
  const HealthMonitor& health() const { return health_; }

  std::string checkpoints_dir() const;
  std::string ctl_dir() const;

 private:
  std::size_t poll_wal();
  void process_commands();
  void handle_command(const std::string& cmd_path);
  void prune_checkpoints();
  void export_metrics();
  /// Feed a completed watched phase to the HealthMonitor and apply the
  /// resulting state: degraded/overloaded pins incremental evaluation,
  /// overloaded additionally arms the trigger-deferral window.
  void observe_phase(const char* phase,
                     std::chrono::steady_clock::time_point begin);
  void apply_health();
  /// True when an overloaded daemon should leave this trigger command in
  /// place for a later tick (jittered exponential deferral).
  bool defer_trigger() const;
  /// Re-admit spilled events once the ingest queues have drained (spill
  /// backpressure only; a no-op while pressure persists).
  void replay_spill();

  DaemonOptions options_;
  core::Service service_;
  std::optional<trace::EventLogReader> reader_;
  HealthMonitor health_;
  std::unique_ptr<activeness::SpillLog> spill_;

  bool started_ = false;
  bool stopped_ = false;
  std::uint64_t events_applied_ = 0;
  std::uint64_t events_since_checkpoint_ = 0;
  std::uint64_t tick_count_ = 0;

  std::chrono::steady_clock::time_point defer_until_{};
  std::uint64_t checkpoint_retry_at_tick_ = 0;
  int checkpoint_failures_in_row_ = 0;
};

}  // namespace adr::serve
