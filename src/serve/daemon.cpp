#include "serve/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "obs/metrics.hpp"
#include "trace/snapshot.hpp"
#include "util/backoff.hpp"
#include "util/config.hpp"
#include "util/fault.hpp"
#include "util/io.hpp"
#include "util/logging.hpp"

namespace adr::serve {

namespace {

namespace fsys = std::filesystem;

constexpr char kCheckpointPrefix[] = "checkpoint-";

std::string checkpoint_name(std::uint64_t seq) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%020llu", kCheckpointPrefix,
                static_cast<unsigned long long>(seq));
  return buf;
}

/// Checkpoint directories under `dir`, newest (highest seq) first.
std::vector<std::pair<std::uint64_t, std::string>> list_checkpoints(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  if (!fsys::exists(dir)) return found;
  for (const auto& entry : fsys::directory_iterator(dir)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(kCheckpointPrefix, 0) != 0) continue;
    try {
      found.emplace_back(std::stoull(name.substr(sizeof(kCheckpointPrefix) - 1)),
                         entry.path().string());
    } catch (const std::exception&) {
      continue;  // not ours
    }
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return found;
}

/// WAL segments on disk (sealed .seg + the open tail) — the `ctl status`
/// wal_segments field.
std::size_t count_wal_segments(const std::string& dir) {
  std::size_t n = 0;
  if (!fsys::exists(dir)) return n;
  for (const auto& entry : fsys::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.ends_with(".seg") || name.ends_with(".open")) ++n;
  }
  return n;
}

double elapsed_ms_since(std::chrono::steady_clock::time_point begin) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - begin)
      .count();
}

}  // namespace

Daemon::Daemon(trace::UserRegistry registry, DaemonOptions options)
    : options_(std::move(options)),
      service_(
          std::move(registry),
          [](core::ServiceConfig config) {
            // Purge lists are the daemon's product; victim recording is what
            // lets clients (and the identity tests) read them back.
            config.record_victims = true;
            return config;
          }(options_.service)),
      health_(options_.watchdog) {
  if (options_.wal_dir.empty() || options_.state_dir.empty()) {
    throw std::invalid_argument("Daemon: wal_dir and state_dir are required");
  }
  if (options_.keep_checkpoints == 0) options_.keep_checkpoints = 1;
  service_.register_paper_types();
}

std::string Daemon::checkpoints_dir() const {
  return options_.state_dir + "/checkpoints";
}

std::string Daemon::ctl_dir() const { return options_.state_dir + "/ctl"; }

void Daemon::start() {
  if (started_) return;
  fsys::create_directories(checkpoints_dir());
  fsys::create_directories(ctl_dir());
  fsys::create_directories(options_.wal_dir);

  auto& metrics = obs::MetricsRegistry::global();
  bool restored = false;
  for (const auto& [seq, path] : list_checkpoints(checkpoints_dir())) {
    const auto status = service_.restore_checkpoint(path);
    if (status.ok) {
      restored = true;
      metrics.counter("serve.recoveries").add();
      break;
    }
    // A crash mid-checkpoint leaves an unsealed/invalid bundle: skip it and
    // fall back to the previous one plus a longer WAL tail.
    metrics.counter("serve.checkpoints_skipped").add();
  }
  if (!restored && !options_.snapshot_path.empty()) {
    service_.load_snapshot(trace::Snapshot::load_csv(options_.snapshot_path));
  }

  // Bounded ingest admission (§14.1) — configured after recovery so the
  // restored store carries it; the spill segment (and any pending events a
  // previous run left in it) lives under the daemon's state dir.
  if (options_.ingest_queue_cap > 0) {
    activeness::AdmissionConfig admission;
    admission.queue_cap = options_.ingest_queue_cap;
    admission.policy = options_.backpressure;
    admission.shed_budget = options_.shed_budget;
    if (admission.policy == activeness::BackpressurePolicy::kSpill) {
      spill_ = std::make_unique<activeness::SpillLog>(
          options_.spill_dir.empty() ? options_.state_dir + "/spill"
                                     : options_.spill_dir);
      admission.spill = spill_.get();
    }
    service_.prepare_ingest();
    service_.store().set_admission(admission);
  }

  reader_.emplace(options_.wal_dir);
  reader_->seek(service_.last_applied_seq());
  started_ = true;
}

void Daemon::replay_spill() {
  if (!spill_ || spill_->pending() == 0) return;
  // Only when the queues have fully drained — replaying into live pressure
  // would just bounce the events back into the next spill segment.
  auto& store = service_.store();
  if (store.pending_ingest() != 0) return;
  try {
    const std::size_t n = spill_->replay(
        [&store](trace::UserId user, activeness::ActivityTypeId type,
                 activeness::Activity activity) {
          store.enqueue(user, type, activity);
        });
    if (n > 0) {
      ADR_INFO << "serve: re-admitted " << n << " spilled events";
    }
  } catch (const util::CrashInjected&) {
    throw;
  } catch (const std::exception& e) {
    ADR_WARN << "serve: spill replay failed: " << e.what();
    obs::MetricsRegistry::global().counter("serve.spill_replay_failures").add();
  }
}

std::size_t Daemon::poll_wal() {
  std::size_t applied = 0;
  const std::size_t delivered = reader_->poll([&](const trace::Event& event) {
    if (service_.apply(event)) ++applied;
  });
  (void)delivered;
  if (applied > 0) {
    events_applied_ += applied;
    events_since_checkpoint_ += applied;
    util::FaultInjector::global().crash_point("serve.post_apply");
  }
  auto& metrics = obs::MetricsRegistry::global();
  // Backlog the tick found waiting — the observable WAL lag of a tailer
  // that drains to the tip on every poll.
  metrics.gauge("serve.wal_lag").set(static_cast<std::int64_t>(applied));
  metrics.gauge("serve.events_applied")
      .set(static_cast<std::int64_t>(events_applied_));
  metrics.gauge("serve.checkpoint_age_events")
      .set(static_cast<std::int64_t>(events_since_checkpoint_));
  return applied;
}

void Daemon::observe_phase(const char* phase,
                           std::chrono::steady_clock::time_point begin) {
  health_.observe_phase(phase, elapsed_ms_since(begin));
  apply_health();
}

void Daemon::apply_health() {
  const HealthState state = health_.state();
  // Degradation ladder rung 1: degraded (and worse) pins the evaluator to
  // incremental mode — bounded delta work, identical output.
  service_.set_degraded(state == HealthState::kDegraded ||
                        state == HealthState::kOverloaded);
  // Rung 2: overloaded defers new triggers with jittered exponential
  // backoff (the .cmd file stays in place; status/stop keep working).
  if (state == HealthState::kOverloaded) {
    defer_until_ = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double, std::milli>(
                           health_.defer_delay_ms()));
  }
}

bool Daemon::defer_trigger() const {
  return health_.state() == HealthState::kOverloaded &&
         std::chrono::steady_clock::now() < defer_until_;
}

std::string Daemon::save_checkpoint_now() {
  const std::string dir =
      checkpoints_dir() + "/" + checkpoint_name(service_.last_applied_seq());
  // Transient write faults retry in place; crashes and corruption surface
  // (the whole bundle re-commits atomically on a retried attempt).
  util::retry_io("serve.checkpoint", options_.io_retry,
                 [&] { service_.save_checkpoint(dir); });
  events_since_checkpoint_ = 0;
  obs::MetricsRegistry::global()
      .gauge("serve.checkpoint_seq")
      .set(static_cast<std::int64_t>(service_.last_applied_seq()));
  prune_checkpoints();
  return dir;
}

void Daemon::prune_checkpoints() {
  const auto checkpoints = list_checkpoints(checkpoints_dir());
  for (std::size_t i = options_.keep_checkpoints; i < checkpoints.size();
       ++i) {
    util::FaultInjector::global().crash_point("serve.checkpoint.prune");
    std::error_code ec;
    fsys::remove_all(checkpoints[i].second, ec);
  }
}

void Daemon::export_metrics() {
  if (options_.metrics_out.empty()) return;
  // Best-effort: a metrics file the disk refuses to take must never kill
  // the daemon. Injected crashes still propagate (simulated kill -9).
  try {
    util::retry_io("serve.metrics", options_.io_retry, [&] {
      util::io::AtomicWriter writer(options_.metrics_out,
                                    {.fsync = false, .footer = false});
      writer.write_line(obs::MetricsRegistry::global().to_json());
      writer.commit();
    });
  } catch (const util::CrashInjected&) {
    throw;
  } catch (const std::exception& e) {
    ADR_WARN << "metrics export failed (will retry next cadence): "
             << e.what();
    obs::MetricsRegistry::global()
        .counter("serve.metrics_export_failures")
        .add();
  }
}

void Daemon::handle_command(const std::string& cmd_path) {
  const std::string out_path =
      cmd_path.substr(0, cmd_path.size() - 4) + ".out";
  // Crash between reply and removal: the restart sees both files, removes
  // the command, and never re-runs it (purges are not idempotent).
  if (fsys::exists(out_path)) {
    std::error_code ec;
    fsys::remove(cmd_path, ec);
    return;
  }

  std::vector<std::pair<std::string, std::string>> reply;
  const auto put = [&reply](const std::string& key, std::string value) {
    reply.emplace_back(key, std::move(value));
  };

  try {
    const util::Config cmd = util::Config::from_file(cmd_path);
    const std::string verb = cmd.get_string("cmd", "");
    if (verb == "trigger" || verb == "evaluate") {
      if (defer_trigger()) {
        // Overloaded: leave the .cmd in place — a later tick retries it
        // once the jittered deferral window passes. No reply yet.
        return;
      }
      if (!cmd.contains("now")) throw std::runtime_error("missing now =");
      const auto now = static_cast<util::TimePoint>(cmd.get_int("now", 0));
      const auto begin = std::chrono::steady_clock::now();
      if (verb == "trigger") {
        // Same target arithmetic as one-shot `purge --target`: retain this
        // fraction of *current usage* (0 disables the byte target).
        const double retain = cmd.get_double("retain", 0.5);
        const std::uint64_t target =
            retain > 0.0 ? static_cast<std::uint64_t>(
                               static_cast<double>(
                                   service_.vfs().total_bytes()) *
                               (1.0 - retain))
                         : 0;
        const std::string policy = cmd.get_string("policy", "activedr");
        if (policy != "activedr" && policy != "flt") {
          throw std::runtime_error("unknown policy \"" + policy + "\"");
        }
        const retention::PurgeReport report =
            policy == "flt" ? service_.purge_flt(now, target)
                            : service_.purge(now, target);
        put("ok", "true");
        put("policy", report.policy);
        put("purged_files", std::to_string(report.purged_files));
        put("purged_bytes", std::to_string(report.purged_bytes));
        put("target_reached", report.target_reached ? "true" : "false");
        const auto victims_out = cmd.get("victims_out");
        if (victims_out) {
          // Same bytes as one-shot `purge --victims`: one path per line,
          // no footer (but committed atomically).
          util::io::AtomicWriter victims(*victims_out,
                                         {.fsync = false, .footer = false});
          for (const auto& path : report.victim_paths) {
            victims.write_line(path);
          }
          victims.commit();
        }
      } else {
        service_.evaluate(now);
        const auto counts = service_.group_counts();
        put("ok", "true");
        for (std::size_t g = 0; g < counts.size(); ++g) {
          put("g" + std::to_string(g + 1), std::to_string(counts[g]));
        }
      }
      const auto ranks_out = cmd.get("ranks_out");
      if (ranks_out) service_.ranks().save_csv(*ranks_out);
      obs::MetricsRegistry::global()
          .histogram("serve.trigger_seconds")
          .observe(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - begin)
                       .count());
      observe_phase(verb == "trigger" ? "purge" : "evaluate", begin);
    } else if (verb == "checkpoint") {
      const auto begin = std::chrono::steady_clock::now();
      put("ok", "true");
      put("dir", save_checkpoint_now());
      observe_phase("checkpoint", begin);
    } else if (verb == "status") {
      put("ok", "true");
      put("events_applied", std::to_string(events_applied_));
      put("checkpoint_age_events",
          std::to_string(events_since_checkpoint_));
      put("users", std::to_string(service_.registry().size()));
      put("ticks", std::to_string(tick_count_));
      put("health", to_string(health_.state()));
      put("wal_segments", std::to_string(count_wal_segments(options_.wal_dir)));
      const activeness::ActivityStore& store = service_.store();
      put("ingest_pending", std::to_string(store.pending_ingest()));
      std::string depths;
      for (std::size_t s = 0; s < store.dirty_shard_map().shards(); ++s) {
        if (!depths.empty()) depths += ",";
        depths += std::to_string(store.pending_ingest(s));
      }
      put("ingest_pending_per_shard", depths);
      put("ingest_depth_high_water",
          std::to_string(store.ingest_depth_high_water()));
      put("shed_events", std::to_string(store.shed_count()));
      put("spilled_events", std::to_string(store.spilled_count()));
      put("watchdog_breaches", std::to_string(health_.breaches()));
    } else if (verb == "stop") {
      put("ok", "true");
      stopped_ = true;
    } else {
      throw std::runtime_error("unknown cmd \"" + verb + "\"");
    }
    put("applied_seq", std::to_string(service_.last_applied_seq()));
  } catch (const util::CrashInjected&) {
    throw;  // a simulated kill -9 must not write a reply
  } catch (const std::exception& e) {
    // Unknown verbs, torn/partial command files, and failed work all land
    // here: warn, answer ok = false, move on. A malformed drop must never
    // abort the serve loop.
    ADR_WARN << "command " << cmd_path << " failed: " << e.what();
    reply.clear();
    put("ok", "false");
    put("error", e.what());
    obs::MetricsRegistry::global().counter("serve.command_errors").add();
  }

  try {
    util::retry_io("serve.reply", options_.io_retry, [&] {
      util::io::AtomicWriter writer(
          out_path, {.fsync = util::io::default_fsync(), .footer = false});
      for (const auto& [key, value] : reply) {
        writer.write_line(key + " = " + value);
      }
      writer.commit();
    });
  } catch (const util::CrashInjected&) {
    throw;
  } catch (const std::exception& e) {
    // Reply unwritable even after retries: drop the command anyway (the
    // client times out and may re-issue) — the daemon itself stays up.
    ADR_WARN << "reply " << out_path << " unwritable: " << e.what();
    obs::MetricsRegistry::global().counter("serve.reply_failures").add();
  }
  std::error_code ec;
  fsys::remove(cmd_path, ec);
  obs::MetricsRegistry::global().counter("serve.commands").add();
}

void Daemon::process_commands() {
  std::vector<std::string> commands;
  for (const auto& entry : fsys::directory_iterator(ctl_dir())) {
    if (!entry.is_regular_file()) continue;
    const std::string path = entry.path().string();
    if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".cmd") == 0) {
      commands.push_back(path);
    }
  }
  std::sort(commands.begin(), commands.end());
  for (const auto& path : commands) handle_command(path);
}

bool Daemon::tick() {
  if (!started_) start();
  poll_wal();
  replay_spill();
  process_commands();
  if (options_.checkpoint_every_events > 0 &&
      events_since_checkpoint_ >= options_.checkpoint_every_events &&
      tick_count_ >= checkpoint_retry_at_tick_) {
    const auto begin = std::chrono::steady_clock::now();
    try {
      save_checkpoint_now();
      checkpoint_failures_in_row_ = 0;
      observe_phase("checkpoint", begin);
    } catch (const util::CrashInjected&) {
      throw;  // simulated kill -9: no graceful handling
    } catch (const std::exception& e) {
      // Cadence checkpoints are retried on later ticks with exponential
      // spacing — a full disk must not hot-loop or kill the daemon. The
      // age gauge keeps growing, so the debt stays visible.
      ADR_WARN << "cadence checkpoint failed: " << e.what();
      obs::MetricsRegistry::global()
          .counter("serve.checkpoint_failures")
          .add();
      checkpoint_retry_at_tick_ =
          tick_count_ +
          (1ull << std::min(checkpoint_failures_in_row_, 8));
      ++checkpoint_failures_in_row_;
      observe_phase("checkpoint", begin);
    }
  }
  ++tick_count_;
  if (options_.metrics_every_ticks > 0 &&
      tick_count_ % options_.metrics_every_ticks == 0) {
    export_metrics();
  }
  if (options_.stop_flag &&
      options_.stop_flag->load(std::memory_order_relaxed)) {
    stopped_ = true;
  }
  return !stopped_;
}

int Daemon::run() {
  start();
  while (tick()) {
    if (options_.max_ticks > 0 && tick_count_ >= options_.max_ticks) break;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.poll_interval_ms));
  }
  shutdown();
  return 0;
}

void Daemon::shutdown() {
  if (!started_) return;
  health_.begin_drain();
  while (poll_wal() > 0) {
  }
  if (options_.seal_wal_on_stop) {
    // Single-writer log: graceful shutdown assumes feeders have quiesced.
    trace::EventLogWriter writer(options_.wal_dir);
    writer.seal();
  }
  save_checkpoint_now();
  obs::MetricsRegistry::global().counter("serve.graceful_stops").add();
  export_metrics();  // last, so the final export reflects the stop itself
}

}  // namespace adr::serve
