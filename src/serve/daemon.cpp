#include "serve/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "obs/metrics.hpp"
#include "trace/snapshot.hpp"
#include "util/config.hpp"
#include "util/fault.hpp"
#include "util/io.hpp"

namespace adr::serve {

namespace {

namespace fsys = std::filesystem;

constexpr char kCheckpointPrefix[] = "checkpoint-";

std::string checkpoint_name(std::uint64_t seq) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%020llu", kCheckpointPrefix,
                static_cast<unsigned long long>(seq));
  return buf;
}

/// Checkpoint directories under `dir`, newest (highest seq) first.
std::vector<std::pair<std::uint64_t, std::string>> list_checkpoints(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  if (!fsys::exists(dir)) return found;
  for (const auto& entry : fsys::directory_iterator(dir)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(kCheckpointPrefix, 0) != 0) continue;
    try {
      found.emplace_back(std::stoull(name.substr(sizeof(kCheckpointPrefix) - 1)),
                         entry.path().string());
    } catch (const std::exception&) {
      continue;  // not ours
    }
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return found;
}

}  // namespace

Daemon::Daemon(trace::UserRegistry registry, DaemonOptions options)
    : options_(std::move(options)),
      service_(
          std::move(registry),
          [](core::ServiceConfig config) {
            // Purge lists are the daemon's product; victim recording is what
            // lets clients (and the identity tests) read them back.
            config.record_victims = true;
            return config;
          }(options_.service)) {
  if (options_.wal_dir.empty() || options_.state_dir.empty()) {
    throw std::invalid_argument("Daemon: wal_dir and state_dir are required");
  }
  if (options_.keep_checkpoints == 0) options_.keep_checkpoints = 1;
  service_.register_paper_types();
}

std::string Daemon::checkpoints_dir() const {
  return options_.state_dir + "/checkpoints";
}

std::string Daemon::ctl_dir() const { return options_.state_dir + "/ctl"; }

void Daemon::start() {
  if (started_) return;
  fsys::create_directories(checkpoints_dir());
  fsys::create_directories(ctl_dir());
  fsys::create_directories(options_.wal_dir);

  auto& metrics = obs::MetricsRegistry::global();
  bool restored = false;
  for (const auto& [seq, path] : list_checkpoints(checkpoints_dir())) {
    const auto status = service_.restore_checkpoint(path);
    if (status.ok) {
      restored = true;
      metrics.counter("serve.recoveries").add();
      break;
    }
    // A crash mid-checkpoint leaves an unsealed/invalid bundle: skip it and
    // fall back to the previous one plus a longer WAL tail.
    metrics.counter("serve.checkpoints_skipped").add();
  }
  if (!restored && !options_.snapshot_path.empty()) {
    service_.load_snapshot(trace::Snapshot::load_csv(options_.snapshot_path));
  }

  reader_.emplace(options_.wal_dir);
  reader_->seek(service_.last_applied_seq());
  started_ = true;
}

std::size_t Daemon::poll_wal() {
  std::size_t applied = 0;
  const std::size_t delivered = reader_->poll([&](const trace::Event& event) {
    if (service_.apply(event)) ++applied;
  });
  (void)delivered;
  if (applied > 0) {
    events_applied_ += applied;
    events_since_checkpoint_ += applied;
    util::FaultInjector::global().crash_point("serve.post_apply");
  }
  auto& metrics = obs::MetricsRegistry::global();
  // Backlog the tick found waiting — the observable WAL lag of a tailer
  // that drains to the tip on every poll.
  metrics.gauge("serve.wal_lag").set(static_cast<std::int64_t>(applied));
  metrics.gauge("serve.events_applied")
      .set(static_cast<std::int64_t>(events_applied_));
  metrics.gauge("serve.checkpoint_age_events")
      .set(static_cast<std::int64_t>(events_since_checkpoint_));
  return applied;
}

std::string Daemon::save_checkpoint_now() {
  const std::string dir =
      checkpoints_dir() + "/" + checkpoint_name(service_.last_applied_seq());
  service_.save_checkpoint(dir);
  events_since_checkpoint_ = 0;
  obs::MetricsRegistry::global()
      .gauge("serve.checkpoint_seq")
      .set(static_cast<std::int64_t>(service_.last_applied_seq()));
  prune_checkpoints();
  return dir;
}

void Daemon::prune_checkpoints() {
  const auto checkpoints = list_checkpoints(checkpoints_dir());
  for (std::size_t i = options_.keep_checkpoints; i < checkpoints.size();
       ++i) {
    util::FaultInjector::global().crash_point("serve.checkpoint.prune");
    std::error_code ec;
    fsys::remove_all(checkpoints[i].second, ec);
  }
}

void Daemon::export_metrics() {
  if (options_.metrics_out.empty()) return;
  util::io::AtomicWriter writer(options_.metrics_out,
                                {.fsync = false, .footer = false});
  writer.write_line(obs::MetricsRegistry::global().to_json());
  writer.commit();
}

void Daemon::handle_command(const std::string& cmd_path) {
  const std::string out_path =
      cmd_path.substr(0, cmd_path.size() - 4) + ".out";
  // Crash between reply and removal: the restart sees both files, removes
  // the command, and never re-runs it (purges are not idempotent).
  if (fsys::exists(out_path)) {
    std::error_code ec;
    fsys::remove(cmd_path, ec);
    return;
  }

  std::vector<std::pair<std::string, std::string>> reply;
  const auto put = [&reply](const std::string& key, std::string value) {
    reply.emplace_back(key, std::move(value));
  };

  try {
    const util::Config cmd = util::Config::from_file(cmd_path);
    const std::string verb = cmd.get_string("cmd", "");
    if (verb == "trigger" || verb == "evaluate") {
      if (!cmd.contains("now")) throw std::runtime_error("missing now =");
      const auto now = static_cast<util::TimePoint>(cmd.get_int("now", 0));
      const auto begin = std::chrono::steady_clock::now();
      if (verb == "trigger") {
        // Same target arithmetic as one-shot `purge --target`: retain this
        // fraction of *current usage* (0 disables the byte target).
        const double retain = cmd.get_double("retain", 0.5);
        const std::uint64_t target =
            retain > 0.0 ? static_cast<std::uint64_t>(
                               static_cast<double>(
                                   service_.vfs().total_bytes()) *
                               (1.0 - retain))
                         : 0;
        const std::string policy = cmd.get_string("policy", "activedr");
        if (policy != "activedr" && policy != "flt") {
          throw std::runtime_error("unknown policy \"" + policy + "\"");
        }
        const retention::PurgeReport report =
            policy == "flt" ? service_.purge_flt(now, target)
                            : service_.purge(now, target);
        put("ok", "true");
        put("policy", report.policy);
        put("purged_files", std::to_string(report.purged_files));
        put("purged_bytes", std::to_string(report.purged_bytes));
        put("target_reached", report.target_reached ? "true" : "false");
        const auto victims_out = cmd.get("victims_out");
        if (victims_out) {
          // Same bytes as one-shot `purge --victims`: one path per line,
          // no footer (but committed atomically).
          util::io::AtomicWriter victims(*victims_out,
                                         {.fsync = false, .footer = false});
          for (const auto& path : report.victim_paths) {
            victims.write_line(path);
          }
          victims.commit();
        }
      } else {
        service_.evaluate(now);
        const auto counts = service_.group_counts();
        put("ok", "true");
        for (std::size_t g = 0; g < counts.size(); ++g) {
          put("g" + std::to_string(g + 1), std::to_string(counts[g]));
        }
      }
      const auto ranks_out = cmd.get("ranks_out");
      if (ranks_out) service_.ranks().save_csv(*ranks_out);
      obs::MetricsRegistry::global()
          .histogram("serve.trigger_seconds")
          .observe(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - begin)
                       .count());
    } else if (verb == "checkpoint") {
      put("ok", "true");
      put("dir", save_checkpoint_now());
    } else if (verb == "status") {
      put("ok", "true");
      put("events_applied", std::to_string(events_applied_));
      put("checkpoint_age_events",
          std::to_string(events_since_checkpoint_));
      put("users", std::to_string(service_.registry().size()));
      put("ticks", std::to_string(tick_count_));
    } else if (verb == "stop") {
      put("ok", "true");
      stopped_ = true;
    } else {
      throw std::runtime_error("unknown cmd \"" + verb + "\"");
    }
    put("applied_seq", std::to_string(service_.last_applied_seq()));
  } catch (const util::CrashInjected&) {
    throw;  // a simulated kill -9 must not write a reply
  } catch (const std::exception& e) {
    reply.clear();
    put("ok", "false");
    put("error", e.what());
    obs::MetricsRegistry::global().counter("serve.command_errors").add();
  }

  util::io::AtomicWriter writer(out_path, {.fsync = util::io::default_fsync(),
                                           .footer = false});
  for (const auto& [key, value] : reply) {
    writer.write_line(key + " = " + value);
  }
  writer.commit();
  std::error_code ec;
  fsys::remove(cmd_path, ec);
  obs::MetricsRegistry::global().counter("serve.commands").add();
}

void Daemon::process_commands() {
  std::vector<std::string> commands;
  for (const auto& entry : fsys::directory_iterator(ctl_dir())) {
    if (!entry.is_regular_file()) continue;
    const std::string path = entry.path().string();
    if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".cmd") == 0) {
      commands.push_back(path);
    }
  }
  std::sort(commands.begin(), commands.end());
  for (const auto& path : commands) handle_command(path);
}

bool Daemon::tick() {
  if (!started_) start();
  poll_wal();
  process_commands();
  if (options_.checkpoint_every_events > 0 &&
      events_since_checkpoint_ >= options_.checkpoint_every_events) {
    save_checkpoint_now();
  }
  ++tick_count_;
  if (options_.metrics_every_ticks > 0 &&
      tick_count_ % options_.metrics_every_ticks == 0) {
    export_metrics();
  }
  if (options_.stop_flag &&
      options_.stop_flag->load(std::memory_order_relaxed)) {
    stopped_ = true;
  }
  return !stopped_;
}

int Daemon::run() {
  start();
  while (tick()) {
    if (options_.max_ticks > 0 && tick_count_ >= options_.max_ticks) break;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.poll_interval_ms));
  }
  shutdown();
  return 0;
}

void Daemon::shutdown() {
  if (!started_) return;
  while (poll_wal() > 0) {
  }
  if (options_.seal_wal_on_stop) {
    // Single-writer log: graceful shutdown assumes feeders have quiesced.
    trace::EventLogWriter writer(options_.wal_dir);
    writer.seal();
  }
  save_checkpoint_now();
  obs::MetricsRegistry::global().counter("serve.graceful_stops").add();
  export_metrics();  // last, so the final export reflects the stop itself
}

}  // namespace adr::serve
