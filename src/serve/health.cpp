#include "serve/health.hpp"

#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace adr::serve {

const char* to_string(HealthState state) {
  switch (state) {
    case HealthState::kOk:
      return "ok";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kOverloaded:
      return "overloaded";
    case HealthState::kDraining:
      return "draining";
  }
  return "unknown";
}

namespace {

int level(HealthState state) { return static_cast<int>(state); }

}  // namespace

HealthMonitor::HealthMonitor(WatchdogConfig config)
    : config_(config), defer_(config.defer_backoff) {
  obs::MetricsRegistry::global().gauge("serve.health").set(level(state_));
}

void HealthMonitor::transition_to(HealthState next, const char* why) {
  if (next == state_) return;
  ADR_WARN << "health: " << to_string(state_) << " -> " << to_string(next)
           << " (" << why << ")";
  state_ = next;
  ++transitions_;
  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter("serve.health_transitions").add();
  metrics.gauge("serve.health").set(level(state_));
}

bool HealthMonitor::observe_phase(const char* phase, double elapsed_ms) {
  auto& metrics = obs::MetricsRegistry::global();
  metrics.histogram(std::string("serve.phase_seconds.") + phase)
      .observe(elapsed_ms / 1000.0);
  if (config_.trigger_deadline_ms == 0) return false;
  const bool breached =
      elapsed_ms > static_cast<double>(config_.trigger_deadline_ms);
  if (state_ == HealthState::kDraining) return breached;

  if (breached) {
    ++breaches_;
    ++consecutive_breaches_;
    consecutive_ok_ = 0;
    metrics.counter("serve.watchdog_breaches").add();
    ADR_WARN << "watchdog: phase '" << phase << "' took " << elapsed_ms
             << " ms (deadline " << config_.trigger_deadline_ms << " ms)";
    if (state_ == HealthState::kOk &&
        consecutive_breaches_ >= config_.degrade_after) {
      transition_to(HealthState::kDegraded, "deadline breached");
      consecutive_breaches_ = 0;
    } else if (state_ == HealthState::kDegraded &&
               consecutive_breaches_ >= config_.overload_after) {
      transition_to(HealthState::kOverloaded,
                    "still breaching while degraded");
      consecutive_breaches_ = 0;
    }
  } else {
    consecutive_breaches_ = 0;
    ++consecutive_ok_;
    if (consecutive_ok_ >= config_.recover_after) {
      consecutive_ok_ = 0;
      deferrals_in_row_ = 0;
      if (state_ == HealthState::kOverloaded) {
        transition_to(HealthState::kDegraded, "phases back under deadline");
      } else if (state_ == HealthState::kDegraded) {
        transition_to(HealthState::kOk, "phases back under deadline");
      }
    }
  }
  return breached;
}

void HealthMonitor::begin_drain() {
  transition_to(HealthState::kDraining, "shutdown requested");
}

double HealthMonitor::defer_delay_ms() {
  obs::MetricsRegistry::global().counter("serve.trigger_deferrals").add();
  return defer_.delay_ms(deferrals_in_row_++);
}

}  // namespace adr::serve
