#pragma once
// Daemon health state machine and trigger watchdog (DESIGN.md §14.2–14.3).
//
// The resident daemon must degrade instead of dying: when a trigger phase
// (evaluate, purge, checkpoint) blows its deadline, the HealthMonitor walks
// the degradation ladder —
//
//   ok ──breach──▶ degraded ──consecutive breaches──▶ overloaded
//    ◀─recover──            ◀─────────recover────────
//                                    │ begin_drain()
//                                    ▼
//                                draining            (terminal)
//
//  * degraded — the owner pins the evaluator pipeline to kIncremental
//    (Service::set_degraded): delta work is bounded by the dirty set, so no
//    advance can decide to pay a full-rebuild latency spike. Output is
//    unchanged — every eval mode computes identical ranks.
//  * overloaded — new trigger commands are deferred with jittered
//    exponential backoff (the .cmd file stays in place; status/stop keep
//    working). Recovery needs `recover_after_ok` consecutive in-deadline
//    phases per step back down.
//  * draining — shutdown started: finish in-flight work, seal the WAL,
//    write the final checkpoint. Entered once, never left.
//
// Observability: counters serve.watchdog_breaches, serve.health_transitions,
// serve.trigger_deferrals; gauge serve.health (0 = ok .. 3 = draining).

#include <cstdint>
#include <string>

#include "util/backoff.hpp"

namespace adr::serve {

enum class HealthState { kOk, kDegraded, kOverloaded, kDraining };

const char* to_string(HealthState state);

struct WatchdogConfig {
  /// Per-phase deadline in milliseconds; 0 disables the watchdog (phases
  /// are still timed, never judged).
  std::uint64_t trigger_deadline_ms = 0;
  /// Consecutive breaches before ok → degraded.
  int degrade_after = 1;
  /// Consecutive breaches (counted from entering degraded) before
  /// degraded → overloaded.
  int overload_after = 2;
  /// Consecutive in-deadline phases per recovery step (overloaded →
  /// degraded → ok).
  int recover_after = 2;
  /// Jittered exponential backoff for deferred triggers while overloaded.
  util::BackoffPolicy defer_backoff{
      .max_attempts = 1 << 20,  // deferral never "exhausts"
      .initial_delay_ms = 50.0,
      .multiplier = 2.0,
      .max_delay_ms = 2000.0,
      .jitter = 0.5,
  };
};

class HealthMonitor {
 public:
  explicit HealthMonitor(WatchdogConfig config);

  HealthState state() const { return state_; }
  const WatchdogConfig& config() const { return config_; }

  /// Record one completed trigger phase. Returns true when the phase
  /// breached the deadline (and the ladder may have stepped up). While
  /// draining, observations are recorded but the state never changes.
  bool observe_phase(const char* phase, double elapsed_ms);

  /// Shutdown started: enter kDraining (terminal).
  void begin_drain();

  /// While overloaded: the jittered delay before the next deferred trigger
  /// attempt (grows exponentially per consecutive deferral). Counted in
  /// serve.trigger_deferrals.
  double defer_delay_ms();

  std::uint64_t breaches() const { return breaches_; }
  std::uint64_t transitions() const { return transitions_; }

 private:
  void transition_to(HealthState next, const char* why);

  WatchdogConfig config_;
  HealthState state_ = HealthState::kOk;
  util::Backoff defer_;
  int consecutive_breaches_ = 0;
  int consecutive_ok_ = 0;
  int deferrals_in_row_ = 0;
  std::uint64_t breaches_ = 0;
  std::uint64_t transitions_ = 0;
};

}  // namespace adr::serve
