#pragma once
// Job-scheduler log container with CSV persistence.

#include <string>
#include <vector>

#include "trace/types.hpp"
#include "util/parse.hpp"

namespace adr::trace {

/// Time-ordered collection of job records.
class JobLog {
 public:
  void add(JobRecord record);
  void reserve(std::size_t n) { records_.reserve(n); }

  /// Sort by submit time (stable; ties keep insertion order).
  void sort_by_time();

  /// Assign sequential job ids (1-based) in current record order.
  void assign_ids();
  bool is_sorted_by_time() const;

  const std::vector<JobRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Records with submit_time in [begin, end).
  std::vector<JobRecord> slice(util::TimePoint begin, util::TimePoint end) const;

  /// CSV persistence (header: job_id,user,submit_time,duration_s,cores).
  /// save_csv is atomic (tmp + rename) with a CRC footer; load_csv verifies
  /// the footer (quarantining a corrupt file) and applies the ParsePolicy:
  /// strict throws a contextual ParseError on the first bad row, permissive
  /// quarantines malformed/out-of-order/duplicate rows to a sidecar.
  void save_csv(const std::string& path) const;
  static JobLog load_csv(const std::string& path,
                         const util::ParseOptions& opts = {});

 private:
  std::vector<JobRecord> records_;
};

}  // namespace adr::trace
