#pragma once
// Metadata snapshots: the weekly Lustre metadata dumps the paper replays.
// A snapshot is a flat list of SnapshotEntry persisted as CSV; the Vfs can
// import/export one (fs/vfs.hpp), which is how emulation runs are seeded.

#include <string>
#include <vector>

#include "trace/types.hpp"
#include "util/parse.hpp"

namespace adr::trace {

class Snapshot {
 public:
  void add(SnapshotEntry entry);
  void reserve(std::size_t n) { entries_.reserve(n); }

  const std::vector<SnapshotEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Sum of all synthesized file sizes.
  std::uint64_t total_bytes() const;

  /// CSV persistence (header: path,owner,stripes,size,atime). Paths ending
  /// in ".gz" are written/read gzip-compressed, like the Spider snapshots.
  void save_csv(const std::string& path) const;
  static Snapshot load_csv(const std::string& path,
                           const util::ParseOptions& opts = {});

 private:
  std::vector<SnapshotEntry> entries_;
};

/// Sharded snapshots: the paper's metadata dumps are a *series* of gzipped
/// text files, each scanned by one MPI rank (Fig. 12c/d). save_sharded
/// splits a snapshot into `shards` files named snapshot_NNN.csv[.gz] under
/// `dir`; load_sharded reassembles every such file.
std::vector<std::string> save_sharded_snapshot(const Snapshot& snapshot,
                                               const std::string& dir,
                                               std::size_t shards,
                                               bool gzip = true);
Snapshot load_sharded_snapshot(const std::string& dir);

/// The shard files under `dir`, in shard order (for per-shard scans).
std::vector<std::string> sharded_snapshot_files(const std::string& dir);

}  // namespace adr::trace
