#pragma once
// Core trace record types shared across the library.
//
// These mirror the OLCF datasets the paper consumed (§4.1.1): job-scheduler
// logs, a publication list, application logs (file paths touched by runs),
// a user list, and weekly metadata snapshots of the parallel file system.

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace adr::trace {

/// Dense user identifier (index into the UserRegistry).
using UserId = std::uint32_t;
inline constexpr UserId kInvalidUser = static_cast<UserId>(-1);

/// One job-scheduler record. Operations in the paper's evaluation are job
/// submissions whose impact is core-hours (cores x duration).
struct JobRecord {
  std::uint64_t job_id = 0;
  UserId user = kInvalidUser;
  util::TimePoint submit_time = 0;
  std::int64_t duration_seconds = 0;
  std::int32_t cores = 0;

  /// The paper's operation impact metric: CPU cores x job hours.
  double core_hours() const {
    return static_cast<double>(cores) *
           (static_cast<double>(duration_seconds) / 3600.0);
  }
};

/// One publication. Outcomes in the paper's evaluation are publications whose
/// impact follows Eq. 8: D_pub = (c + 1) * (n - i + 1) for the i-th author
/// (1-based) out of n, with citation count c.
struct PublicationRecord {
  std::uint64_t pub_id = 0;
  util::TimePoint published = 0;
  std::int32_t citations = 0;
  std::vector<UserId> authors;  ///< in author-list order

  /// Eq. 8 impact for the author at 1-based position `author_index`.
  double impact_for_author(std::size_t author_index) const {
    const double n = static_cast<double>(authors.size());
    const double i = static_cast<double>(author_index);
    return (static_cast<double>(citations) + 1.0) * (n - i + 1.0);
  }
};

/// What an application-log entry did to the path.
enum class FileOp : std::uint8_t {
  kAccess = 0,  ///< read/overwrite an existing file (miss if absent)
  kCreate = 1,  ///< first write of a new file (brings size_bytes/stripes)
};

/// One application-log entry: a run by `user` at `timestamp` touched `path`.
/// Replaying these drives atime updates, file creation, and file-miss
/// accounting.
struct AppLogEntry {
  UserId user = kInvalidUser;
  util::TimePoint timestamp = 0;
  FileOp op = FileOp::kAccess;
  std::string path;
  /// Only meaningful for kCreate.
  std::uint64_t size_bytes = 0;
  std::int32_t stripe_count = 1;
};

/// One file in a metadata snapshot. Spider snapshots expose stripe counts
/// rather than sizes, so the size here is the synthesized one (see
/// fs/striping.hpp), exactly as the paper does.
struct SnapshotEntry {
  std::string path;
  UserId owner = kInvalidUser;
  std::int32_t stripe_count = 1;
  std::uint64_t size_bytes = 0;
  util::TimePoint atime = 0;
};

}  // namespace adr::trace
