#include "trace/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/gzfile.hpp"

namespace adr::trace {

namespace {

const std::vector<std::string> kHeader = {"path", "owner", "stripes", "size",
                                          "atime"};

std::vector<std::string> entry_row(const SnapshotEntry& e) {
  return {e.path, std::to_string(e.owner), std::to_string(e.stripe_count),
          std::to_string(e.size_bytes), std::to_string(e.atime)};
}

SnapshotEntry parse_row(const std::vector<std::string>& row,
                        const std::string& source) {
  if (row.size() != 5)
    throw std::runtime_error("Snapshot: malformed row in " + source);
  SnapshotEntry e;
  e.path = row[0];
  e.owner = static_cast<UserId>(std::stoul(row[1]));
  e.stripe_count = std::stoi(row[2]);
  e.size_bytes = std::stoull(row[3]);
  e.atime = std::stoll(row[4]);
  return e;
}

}  // namespace

void Snapshot::add(SnapshotEntry entry) { entries_.push_back(std::move(entry)); }

std::uint64_t Snapshot::total_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& e : entries_) sum += e.size_bytes;
  return sum;
}

void Snapshot::save_csv(const std::string& path) const {
  if (util::has_gz_suffix(path)) {
    util::GzWriter out(path);
    out.write_line(util::csv_join(kHeader));
    for (const auto& e : entries_) out.write_line(util::csv_join(entry_row(e)));
    out.close();
    return;
  }
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Snapshot: cannot write " + path);
  util::CsvWriter w(out);
  w.write_row(kHeader);
  for (const auto& e : entries_) w.write_row(entry_row(e));
}

Snapshot Snapshot::load_csv(const std::string& path) {
  Snapshot snap;
  if (util::has_gz_suffix(path)) {
    util::GzReader in(path);
    bool header = true;
    while (auto line = in.next_line()) {
      if (line->empty()) continue;
      if (header) {
        header = false;
        continue;
      }
      snap.add(parse_row(util::csv_split(*line), path));
    }
    if (header) throw std::runtime_error("Snapshot: empty file " + path);
    return snap;
  }
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Snapshot: cannot open " + path);
  util::CsvReader reader(in);
  if (!reader.read_header())
    throw std::runtime_error("Snapshot: empty file " + path);
  while (auto row = reader.next()) {
    snap.add(parse_row(*row, path));
  }
  return snap;
}

std::vector<std::string> save_sharded_snapshot(const Snapshot& snapshot,
                                               const std::string& dir,
                                               std::size_t shards,
                                               bool gzip) {
  if (shards == 0) throw std::invalid_argument("save_sharded_snapshot: 0 shards");
  std::filesystem::create_directories(dir);
  std::vector<std::string> files;
  const std::size_t n = snapshot.size();
  for (std::size_t s = 0; s < shards; ++s) {
    char name[48];
    std::snprintf(name, sizeof(name), "/snapshot_%03zu.csv%s", s,
                  gzip ? ".gz" : "");
    const std::string path = dir + name;
    // Contiguous slice per shard (files stay grouped by user directory).
    const std::size_t lo = n * s / shards;
    const std::size_t hi = n * (s + 1) / shards;
    Snapshot shard;
    shard.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      shard.add(snapshot.entries()[i]);
    }
    shard.save_csv(path);
    files.push_back(path);
  }
  return files;
}

std::vector<std::string> sharded_snapshot_files(const std::string& dir) {
  std::vector<std::string> files;
  if (!std::filesystem::is_directory(dir)) return files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snapshot_", 0) == 0 &&
        name.find(".csv") != std::string::npos) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

Snapshot load_sharded_snapshot(const std::string& dir) {
  Snapshot merged;
  for (const auto& file : sharded_snapshot_files(dir)) {
    const Snapshot shard = Snapshot::load_csv(file);
    merged.reserve(merged.size() + shard.size());
    for (const auto& e : shard.entries()) merged.add(e);
  }
  return merged;
}

}  // namespace adr::trace
