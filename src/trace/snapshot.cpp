#include "trace/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "util/csv.hpp"
#include "util/gzfile.hpp"
#include "util/io.hpp"

namespace adr::trace {

namespace {

const std::vector<std::string> kHeader = {"path", "owner", "stripes", "size",
                                          "atime"};

std::vector<std::string> entry_row(const SnapshotEntry& e) {
  return {e.path, std::to_string(e.owner), std::to_string(e.stripe_count),
          std::to_string(e.size_bytes), std::to_string(e.atime)};
}

SnapshotEntry parse_row(const std::vector<std::string>& row,
                        const util::RowContext& ctx) {
  if (row.size() != 5) {
    throw util::ParseError(ctx.describe("row") + ": expected 5 columns, got " +
                           std::to_string(row.size()));
  }
  SnapshotEntry e;
  e.path = row[0];
  e.owner = static_cast<UserId>(util::parse_u32(row[1], ctx, "owner"));
  e.stripe_count = util::parse_i32(row[2], ctx, "stripes");
  e.size_bytes = util::parse_u64(row[3], ctx, "size");
  e.atime = util::parse_i64(row[4], ctx, "atime");
  return e;
}

}  // namespace

void Snapshot::add(SnapshotEntry entry) { entries_.push_back(std::move(entry)); }

std::uint64_t Snapshot::total_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& e : entries_) sum += e.size_bytes;
  return sum;
}

void Snapshot::save_csv(const std::string& path) const {
  if (util::has_gz_suffix(path)) {
    // Gzip artifacts cannot stream through AtomicWriter (the CRC must cover
    // the *uncompressed* payload, and the footer lives inside the gzip
    // stream), so the atomic protocol is inlined: write `<path>.tmp`,
    // accumulate the payload CRC at the call site, append the footer as the
    // final compressed line, then rename via io::commit_tmp.
    const std::string tmp = path + ".tmp";
    util::io::Crc32 crc;
    std::uint64_t bytes = 0;
    {
      util::GzWriter out(tmp);
      const auto put = [&](const std::string& line) {
        crc.update(line);
        crc.update("\n", 1);
        bytes += line.size() + 1;
        out.write_line(line);
      };
      put(util::csv_join(kHeader));
      for (const auto& e : entries_) put(util::csv_join(entry_row(e)));
      out.write_line(util::io::make_footer(crc.value(), bytes));
      out.close();
    }
    util::io::commit_tmp(tmp, path, util::io::default_fsync());
    return;
  }
  util::io::AtomicWriter writer(path,
                                {.fsync = util::io::default_fsync()});
  util::CsvWriter w(writer.stream());
  w.write_row(kHeader);
  for (const auto& e : entries_) w.write_row(entry_row(e));
  writer.commit();
}

Snapshot Snapshot::load_csv(const std::string& path,
                            const util::ParseOptions& opts) {
  // load_verified is gzip-transparent, so plain and .gz snapshots share one
  // verified-read path.
  std::istringstream in(util::io::load_verified(path));
  util::CsvReader reader(in);
  if (!reader.read_header())
    throw std::runtime_error("Snapshot: empty file " + path);
  Snapshot snap;
  const bool permissive = opts.policy == util::ParsePolicy::kPermissive;
  util::RowQuarantine quarantine(path, opts.quarantine_path);
  std::unordered_set<std::string> seen_paths;
  while (auto row = reader.next()) {
    const util::RowContext ctx{&path, reader.line()};
    try {
      SnapshotEntry e = parse_row(*row, ctx);
      if (permissive && !seen_paths.insert(e.path).second) {
        quarantine.add(reader.line(), util::RowQuarantine::kDuplicate,
                       "path '" + e.path + "' already seen", reader.raw());
        continue;
      }
      snap.add(std::move(e));
      if (opts.stats) ++opts.stats->rows_ok;
    } catch (const util::ParseError& e) {
      if (!permissive) throw;
      quarantine.add(reader.line(), util::RowQuarantine::kMalformed, e.what(),
                     reader.raw());
    }
  }
  quarantine.finish(opts.stats);
  return snap;
}

std::vector<std::string> save_sharded_snapshot(const Snapshot& snapshot,
                                               const std::string& dir,
                                               std::size_t shards,
                                               bool gzip) {
  if (shards == 0) throw std::invalid_argument("save_sharded_snapshot: 0 shards");
  std::filesystem::create_directories(dir);
  std::vector<std::string> files;
  const std::size_t n = snapshot.size();
  for (std::size_t s = 0; s < shards; ++s) {
    char name[48];
    std::snprintf(name, sizeof(name), "/snapshot_%03zu.csv%s", s,
                  gzip ? ".gz" : "");
    const std::string path = dir + name;
    // Contiguous slice per shard (files stay grouped by user directory).
    const std::size_t lo = n * s / shards;
    const std::size_t hi = n * (s + 1) / shards;
    Snapshot shard;
    shard.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      shard.add(snapshot.entries()[i]);
    }
    shard.save_csv(path);
    files.push_back(path);
  }
  return files;
}

std::vector<std::string> sharded_snapshot_files(const std::string& dir) {
  std::vector<std::string> files;
  if (!std::filesystem::is_directory(dir)) return files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snapshot_", 0) == 0 &&
        name.find(".csv") != std::string::npos &&
        name.find(".tmp") == std::string::npos &&
        name.find(".corrupt") == std::string::npos) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

Snapshot load_sharded_snapshot(const std::string& dir) {
  Snapshot merged;
  for (const auto& file : sharded_snapshot_files(dir)) {
    const Snapshot shard = Snapshot::load_csv(file);
    merged.reserve(merged.size() + shard.size());
    for (const auto& e : shard.entries()) merged.add(e);
  }
  return merged;
}

}  // namespace adr::trace
