#include "trace/job_log.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace adr::trace {

void JobLog::add(JobRecord record) { records_.push_back(std::move(record)); }

void JobLog::sort_by_time() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const JobRecord& a, const JobRecord& b) {
                     return a.submit_time < b.submit_time;
                   });
}

void JobLog::assign_ids() {
  std::uint64_t next = 1;
  for (auto& r : records_) r.job_id = next++;
}

bool JobLog::is_sorted_by_time() const {
  return std::is_sorted(records_.begin(), records_.end(),
                        [](const JobRecord& a, const JobRecord& b) {
                          return a.submit_time < b.submit_time;
                        });
}

std::vector<JobRecord> JobLog::slice(util::TimePoint begin,
                                     util::TimePoint end) const {
  std::vector<JobRecord> out;
  for (const auto& r : records_) {
    if (r.submit_time >= begin && r.submit_time < end) out.push_back(r);
  }
  return out;
}

void JobLog::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("JobLog: cannot write " + path);
  util::CsvWriter w(out);
  w.write_row({"job_id", "user", "submit_time", "duration_s", "cores"});
  for (const auto& r : records_) {
    w.write_row({std::to_string(r.job_id), std::to_string(r.user),
                 std::to_string(r.submit_time),
                 std::to_string(r.duration_seconds), std::to_string(r.cores)});
  }
}

JobLog JobLog::load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("JobLog: cannot open " + path);
  util::CsvReader reader(in);
  if (!reader.read_header())
    throw std::runtime_error("JobLog: empty file " + path);
  JobLog log;
  while (auto row = reader.next()) {
    if (row->size() != 5)
      throw std::runtime_error("JobLog: malformed row in " + path);
    JobRecord r;
    r.job_id = std::stoull((*row)[0]);
    r.user = static_cast<UserId>(std::stoul((*row)[1]));
    r.submit_time = std::stoll((*row)[2]);
    r.duration_seconds = std::stoll((*row)[3]);
    r.cores = std::stoi((*row)[4]);
    log.add(std::move(r));
  }
  return log;
}

}  // namespace adr::trace
