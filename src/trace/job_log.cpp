#include "trace/job_log.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "util/csv.hpp"
#include "util/io.hpp"
#include "util/parse.hpp"

namespace adr::trace {

void JobLog::add(JobRecord record) { records_.push_back(std::move(record)); }

void JobLog::sort_by_time() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const JobRecord& a, const JobRecord& b) {
                     return a.submit_time < b.submit_time;
                   });
}

void JobLog::assign_ids() {
  std::uint64_t next = 1;
  for (auto& r : records_) r.job_id = next++;
}

bool JobLog::is_sorted_by_time() const {
  return std::is_sorted(records_.begin(), records_.end(),
                        [](const JobRecord& a, const JobRecord& b) {
                          return a.submit_time < b.submit_time;
                        });
}

std::vector<JobRecord> JobLog::slice(util::TimePoint begin,
                                     util::TimePoint end) const {
  std::vector<JobRecord> out;
  for (const auto& r : records_) {
    if (r.submit_time >= begin && r.submit_time < end) out.push_back(r);
  }
  return out;
}

void JobLog::save_csv(const std::string& path) const {
  util::io::AtomicWriter writer(path,
                                {.fsync = util::io::default_fsync()});
  util::CsvWriter w(writer.stream());
  w.write_row({"job_id", "user", "submit_time", "duration_s", "cores"});
  for (const auto& r : records_) {
    w.write_row({std::to_string(r.job_id), std::to_string(r.user),
                 std::to_string(r.submit_time),
                 std::to_string(r.duration_seconds), std::to_string(r.cores)});
  }
  writer.commit();
}

JobLog JobLog::load_csv(const std::string& path,
                        const util::ParseOptions& opts) {
  std::istringstream in(util::io::load_verified(path));
  util::CsvReader reader(in);
  if (!reader.read_header())
    throw std::runtime_error("JobLog: empty file " + path);
  JobLog log;
  const bool permissive = opts.policy == util::ParsePolicy::kPermissive;
  util::RowQuarantine quarantine(path, opts.quarantine_path);
  std::unordered_set<std::uint64_t> seen_ids;
  util::TimePoint prev_time = 0;
  bool first = true;
  while (auto row = reader.next()) {
    const util::RowContext ctx{&path, reader.line()};
    try {
      if (row->size() != 5) {
        throw util::ParseError("JobLog: " + path + ":" +
                               std::to_string(reader.line()) + ": expected 5 "
                               "columns, got " + std::to_string(row->size()));
      }
      JobRecord r;
      r.job_id = util::parse_u64((*row)[0], ctx, "job_id");
      r.user = static_cast<UserId>(util::parse_u32((*row)[1], ctx, "user"));
      r.submit_time = util::parse_i64((*row)[2], ctx, "submit_time");
      r.duration_seconds = util::parse_i64((*row)[3], ctx, "duration_s");
      r.cores = util::parse_i32((*row)[4], ctx, "cores");
      if (permissive) {
        if (r.job_id != 0 && !seen_ids.insert(r.job_id).second) {
          quarantine.add(reader.line(), util::RowQuarantine::kDuplicate,
                         "job_id " + (*row)[0] + " already seen",
                         reader.raw());
          continue;
        }
        if (!first && r.submit_time < prev_time) {
          quarantine.add(reader.line(), util::RowQuarantine::kOutOfOrder,
                         "submit_time regressed below previous row",
                         reader.raw());
          continue;
        }
      }
      prev_time = r.submit_time;
      first = false;
      log.add(std::move(r));
      if (opts.stats) ++opts.stats->rows_ok;
    } catch (const util::ParseError& e) {
      if (!permissive) throw;
      quarantine.add(reader.line(), util::RowQuarantine::kMalformed, e.what(),
                     reader.raw());
    }
  }
  quarantine.finish(opts.stats);
  return log;
}

}  // namespace adr::trace
