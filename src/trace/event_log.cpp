#include "trace/event_log.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/backoff.hpp"
#include "util/csv.hpp"
#include "util/fault.hpp"
#include "util/io.hpp"

namespace adr::trace {

namespace {

namespace fsys = std::filesystem;

constexpr char kOpenSuffix[] = ".open";
constexpr char kSealedSuffix[] = ".seg";

std::string segment_name(std::uint64_t start, const char* suffix) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "wal-%020llu%s",
                static_cast<unsigned long long>(start), suffix);
  return buf;
}

std::string hex8(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", v);
  return buf;
}

/// Byte length of the valid line prefix of `content` (complete,
/// checksum-passing records only). Updates counts and the last seq seen.
std::size_t valid_prefix(const std::string& content, std::uint64_t& last_seq,
                         std::size_t& events, std::size_t& dropped,
                         bool& torn) {
  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) {
      // Incomplete final line: a torn append (or one still in flight).
      ++dropped;
      torn = true;
      break;
    }
    const std::string line = content.substr(pos, nl - pos);
    if (!line.empty() && line[0] == '#') break;  // §10 footer
    Event e;
    if (!parse_event(line, e)) {
      // A complete-but-invalid record: everything after it is suspect too
      // (suffix semantics, like the ledger salvage).
      for (std::size_t p = pos; p < content.size();
           p = content.find('\n', p) + 1) {
        ++dropped;
        if (content.find('\n', p) == std::string::npos) break;
      }
      torn = true;
      break;
    }
    last_seq = e.seq;
    ++events;
    pos = nl + 1;
  }
  return pos;
}

}  // namespace

// ---- record format ---------------------------------------------------------

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kJob: return "job";
    case EventKind::kPublication: return "pub";
    case EventKind::kAccess: return "access";
    case EventKind::kCreate: return "create";
    case EventKind::kRemove: return "remove";
  }
  return "?";
}

bool parse_event_kind(const std::string& text, EventKind& out) {
  if (text == "job") out = EventKind::kJob;
  else if (text == "pub") out = EventKind::kPublication;
  else if (text == "access") out = EventKind::kAccess;
  else if (text == "create") out = EventKind::kCreate;
  else if (text == "remove") out = EventKind::kRemove;
  else return false;
  return true;
}

Event make_job_event(const JobRecord& job, double weight) {
  Event e;
  e.kind = EventKind::kJob;
  e.user = job.user;
  e.timestamp = job.submit_time;
  e.impact = weight * job.core_hours();
  return e;
}

std::vector<Event> make_publication_events(const PublicationRecord& pub,
                                           double weight) {
  std::vector<Event> out;
  out.reserve(pub.authors.size());
  for (std::size_t i = 0; i < pub.authors.size(); ++i) {
    Event e;
    e.kind = EventKind::kPublication;
    e.user = pub.authors[i];
    e.timestamp = pub.published;
    e.impact = weight * pub.impact_for_author(i + 1);
    out.push_back(std::move(e));
  }
  return out;
}

Event make_app_event(const AppLogEntry& entry) {
  Event e;
  e.kind = entry.op == FileOp::kCreate ? EventKind::kCreate
                                       : EventKind::kAccess;
  e.user = entry.user;
  e.timestamp = entry.timestamp;
  e.path = entry.path;
  e.size_bytes = entry.size_bytes;
  e.stripe_count = entry.stripe_count;
  return e;
}

std::string format_event(const Event& event) {
  char impact[40];
  std::snprintf(impact, sizeof(impact), "%.17g", event.impact);
  const std::string body = util::csv_join(
      {std::to_string(event.seq), to_string(event.kind),
       std::to_string(event.user), std::to_string(event.timestamp), impact,
       event.path, std::to_string(event.size_bytes),
       std::to_string(event.stripe_count)});
  util::io::Crc32 crc;
  crc.update(body);
  return body + "," + hex8(crc.value());
}

bool parse_event(const std::string& line, Event& out) {
  // The crc is the last field and never quoted, so the final comma splits
  // body from checksum even when the path field contains commas.
  const std::size_t comma = line.rfind(',');
  if (comma == std::string::npos || line.size() - comma - 1 != 8) return false;
  const std::string body = line.substr(0, comma);
  util::io::Crc32 crc;
  crc.update(body);
  std::uint32_t want = 0;
  try {
    want = static_cast<std::uint32_t>(
        std::stoul(line.substr(comma + 1), nullptr, 16));
  } catch (const std::exception&) {
    return false;
  }
  if (crc.value() != want) return false;

  const auto fields = util::csv_split(body);
  if (fields.size() != 8) return false;
  Event e;
  try {
    e.seq = std::stoull(fields[0]);
    if (!parse_event_kind(fields[1], e.kind)) return false;
    e.user = static_cast<UserId>(std::stoul(fields[2]));
    e.timestamp = std::stoll(fields[3]);
    e.impact = std::stod(fields[4]);
    e.path = fields[5];
    e.size_bytes = std::stoull(fields[6]);
    e.stripe_count = static_cast<std::int32_t>(std::stol(fields[7]));
  } catch (const std::exception&) {
    return false;
  }
  out = std::move(e);
  return true;
}

// ---- writer ----------------------------------------------------------------

EventLogWriter::EventLogWriter(std::string dir, EventLogOptions opts)
    : dir_(std::move(dir)), opts_(opts) {
  fsys::create_directories(dir_);

  // Recover the append position. Layout rules: at most one .open; an .open
  // whose sealed twin exists is leftover from a crash between seal-commit
  // and removal — the .seg is the truth, drop the .open.
  std::uint64_t best_sealed_start = 0;
  std::string best_sealed_path;
  std::vector<std::pair<std::uint64_t, std::string>> open_files;
  for (const auto& entry : fsys::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) != 0) continue;
    if (name.size() > 5 && name.ends_with(kSealedSuffix)) {
      const std::uint64_t start = std::stoull(name.substr(4));
      if (start >= best_sealed_start) {
        best_sealed_start = start;
        best_sealed_path = entry.path().string();
      }
    } else if (name.ends_with(kOpenSuffix)) {
      open_files.emplace_back(std::stoull(name.substr(4)),
                              entry.path().string());
    }
  }
  std::erase_if(open_files, [this](const auto& f) {
    if (fsys::exists(dir_ + "/" + segment_name(f.first, kSealedSuffix))) {
      fsys::remove(f.second);
      return true;
    }
    return false;
  });
  if (open_files.size() > 1) {
    throw std::runtime_error("EventLogWriter: multiple open segments in " +
                             dir_);
  }

  if (!open_files.empty()) {
    // Salvage the open segment: truncate any torn suffix, then append on.
    open_path_ = open_files[0].second;
    segment_start_ = open_files[0].first;
    std::string content;
    {
      std::ifstream in(open_path_, std::ios::binary);
      content.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    std::uint64_t last_seq = segment_start_ - 1;
    std::size_t dropped = 0;
    bool torn = false;
    segment_events_ = 0;
    const std::size_t keep =
        valid_prefix(content, last_seq, segment_events_, dropped, torn);
    if (keep < content.size()) {
      fsys::resize_file(open_path_, keep);
      obs::MetricsRegistry::global().counter("wal.torn_tails").add();
      obs::MetricsRegistry::global()
          .counter("wal.salvage_dropped_lines")
          .add(dropped);
    }
    next_seq_ = segment_events_ > 0 ? last_seq + 1 : segment_start_;
    write_offset_ = keep;
    out_.open(open_path_, std::ios::binary | std::ios::app);
    if (!out_) {
      throw std::runtime_error("EventLogWriter: cannot reopen " + open_path_);
    }
  } else if (!best_sealed_path.empty()) {
    // Resume after the highest sealed segment's last record.
    const std::string content = util::io::load_verified(
        best_sealed_path, {.require_footer = true});
    std::uint64_t last_seq = best_sealed_start - 1;
    std::size_t events = 0, dropped = 0;
    bool torn = false;
    valid_prefix(content, last_seq, events, dropped, torn);
    if (dropped > 0) {
      throw std::runtime_error("EventLogWriter: sealed segment " +
                               best_sealed_path + " has invalid records");
    }
    next_seq_ = events > 0 ? last_seq + 1 : best_sealed_start;
  }
}

EventLogWriter::~EventLogWriter() {
  if (out_.is_open()) out_.flush();
}

void EventLogWriter::open_segment() {
  if (util::FaultInjector::global().should_fail("wal.append.open")) {
    throw std::runtime_error("EventLogWriter: injected open failure");
  }
  segment_start_ = next_seq_;
  segment_events_ = 0;
  write_offset_ = 0;
  open_path_ = dir_ + "/" + segment_name(segment_start_, kOpenSuffix);
  out_.open(open_path_, std::ios::binary | std::ios::app);
  if (!out_) {
    throw std::runtime_error("EventLogWriter: cannot open " + open_path_);
  }
}

void EventLogWriter::append_attempt(const std::string& line) {
  const auto decision = util::FaultInjector::global().on_write(
      "wal.append.write", write_offset_, line.size());
  out_.write(line.data(), static_cast<std::streamsize>(decision.allow));
  out_.flush();
  write_offset_ += decision.allow;
  if (decision.fail || decision.allow < line.size()) {
    // The torn partial line stays on disk, exactly as a crash would leave
    // it; the next writer (or reader salvage) drops it.
    throw std::runtime_error(decision.enospc
                                 ? "EventLogWriter: no space left on device"
                                 : "EventLogWriter: short write");
  }
  if (!out_) {
    throw std::runtime_error("EventLogWriter: write failed on " + open_path_);
  }
}

std::uint64_t EventLogWriter::append(Event event) {
  event.seq = next_seq_;
  const std::string line = format_event(event) + "\n";

  if (opts_.retry.max_attempts <= 1) {
    if (open_path_.empty()) open_segment();
    append_attempt(line);
  } else {
    // §14.3 transient-fault path: every re-attempt restores the pre-append
    // tail first (closing the stream and truncating the torn partial line)
    // so the retried record lands exactly once, at the same seq. Fatal
    // errors and CrashInjected propagate out of retry_io untouched.
    const std::uint64_t record_start = open_path_.empty() ? 0 : write_offset_;
    util::retry_io("wal.append", opts_.retry, [&] {
      if (open_path_.empty()) open_segment();
      if (write_offset_ > record_start || !out_ || !out_.is_open()) {
        out_.close();
        out_.clear();
        std::error_code ec;
        const auto size = fsys::file_size(open_path_, ec);
        if (!ec && size > record_start) {
          fsys::resize_file(open_path_, record_start);
        }
        out_.open(open_path_, std::ios::binary | std::ios::app);
        if (!out_) {
          throw std::runtime_error("EventLogWriter: cannot open " +
                                   open_path_);
        }
        write_offset_ = record_start;
      }
      append_attempt(line);
    });
  }

  ++next_seq_;
  ++segment_events_;
  obs::MetricsRegistry::global().counter("wal.events_appended").add();
  if (segment_events_ >= opts_.rotate_events) seal();
  return event.seq;
}

void EventLogWriter::flush() {
  if (!out_.is_open()) return;
  out_.flush();
  if (opts_.fsync) {
    // Re-open based fsync is not exposed by ofstream; the AtomicWriter path
    // handles durable seals. For the open tail, flush() is best-effort.
  }
}

void EventLogWriter::seal() {
  if (open_path_.empty()) return;
  out_.flush();
  out_.close();

  std::string content;
  {
    std::ifstream in(open_path_, std::ios::binary);
    content.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  }
  std::uint64_t last_seq = 0;
  std::size_t events = 0, dropped = 0;
  bool torn = false;
  const std::size_t keep =
      valid_prefix(content, last_seq, events, dropped, torn);

  if (events == 0) {
    // Nothing to seal: just drop the (empty or fully torn) open file.
    fsys::remove(open_path_);
    open_path_.clear();
    return;
  }

  // Re-commit the valid payload bytes verbatim under a CRC footer. Keeping
  // the payload byte-identical means a tailing reader's offset into the
  // .open file remains valid in the .seg after the rename.
  const std::string seg_path =
      dir_ + "/" + segment_name(segment_start_, kSealedSuffix);
  {
    util::io::AtomicWriter writer(seg_path,
                                  {.fsync = opts_.fsync ||
                                            util::io::default_fsync()});
    writer.write(content.substr(0, keep));
    writer.commit();
  }
  util::FaultInjector::global().crash_point("wal.seal.pre_remove");
  fsys::remove(open_path_);
  open_path_.clear();
  obs::MetricsRegistry::global().counter("wal.segments_sealed").add();
}

// ---- reader ----------------------------------------------------------------

EventLogReader::EventLogReader(std::string dir) : dir_(std::move(dir)) {}

std::vector<EventLogReader::SegmentFile> EventLogReader::list_segments()
    const {
  std::vector<SegmentFile> out;
  if (!fsys::exists(dir_)) return out;
  for (const auto& entry : fsys::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) != 0) continue;
    SegmentFile f;
    if (name.ends_with(kSealedSuffix)) f.sealed = true;
    else if (name.ends_with(kOpenSuffix)) f.sealed = false;
    else continue;
    f.start = std::stoull(name.substr(4));
    f.path = entry.path().string();
    out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.start != b.start ? a.start < b.start : a.sealed > b.sealed;
  });
  // Where both forms exist, the sealed one is the truth.
  out.erase(std::unique(out.begin(), out.end(),
                        [](const auto& a, const auto& b) {
                          return a.start == b.start;
                        }),
            out.end());
  return out;
}

std::vector<Event> EventLogReader::read_after(std::uint64_t after_seq,
                                              WalSalvage* salvage) {
  std::vector<Event> out;
  WalSalvage local;
  for (const auto& seg : list_segments()) {
    std::string content;
    if (seg.sealed) {
      content = util::io::load_verified(seg.path, {.require_footer = true});
    } else {
      std::ifstream in(seg.path, std::ios::binary);
      content.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    std::size_t pos = 0;
    while (pos < content.size()) {
      const std::size_t nl = content.find('\n', pos);
      if (nl == std::string::npos) {
        ++local.dropped_lines;
        local.torn_tail = true;
        break;
      }
      const std::string line = content.substr(pos, nl - pos);
      if (!line.empty() && line[0] == '#') break;
      Event e;
      if (!parse_event(line, e)) {
        if (seg.sealed) {
          throw std::runtime_error("EventLog: invalid record in sealed " +
                                   seg.path);
        }
        // Open-segment torn suffix: drop the rest.
        for (std::size_t p = pos; p < content.size();) {
          ++local.dropped_lines;
          const std::size_t q = content.find('\n', p);
          if (q == std::string::npos) break;
          p = q + 1;
        }
        local.torn_tail = true;
        break;
      }
      ++local.events;
      if (e.seq > after_seq) out.push_back(std::move(e));
      pos = nl + 1;
    }
  }
  if (local.torn_tail) {
    obs::MetricsRegistry::global().counter("wal.torn_tails").add();
    obs::MetricsRegistry::global()
        .counter("wal.salvage_dropped_lines")
        .add(local.dropped_lines);
  }
  if (salvage) *salvage = local;
  return out;
}

void EventLogReader::seek(std::uint64_t after_seq) {
  next_seq_ = after_seq + 1;
  cur_path_.clear();
  cur_start_ = 0;
  cur_sealed_ = false;
  offset_ = 0;
  cur_done_ = false;
}

std::size_t EventLogReader::poll(
    const std::function<void(const Event&)>& fn) {
  std::size_t delivered = 0;
  // The guard bounds pathological rescans (e.g. segments vanishing under
  // us); each iteration either makes progress or breaks out.
  for (int guard = 0; guard < 1024; ++guard) {
    if (cur_path_.empty()) {
      const auto segments = list_segments();
      if (segments.empty()) break;
      // The segment that can contain next_seq_: the last start <= next_seq_
      // (records below next_seq_ are skipped while reading). If the log
      // begins past next_seq_ (a pruned prefix), jump forward.
      const SegmentFile* pick = nullptr;
      for (const auto& seg : segments) {
        if (seg.start <= next_seq_) pick = &seg;
      }
      if (!pick) pick = &segments.front();
      cur_path_ = pick->path;
      cur_start_ = pick->start;
      cur_sealed_ = pick->sealed;
      offset_ = 0;
      cur_done_ = false;
    }

    std::ifstream in(cur_path_, std::ios::binary);
    if (!in) {
      // The file vanished: sealed twin (rotation) or pruned. Re-position.
      const std::string twin =
          dir_ + "/" + segment_name(cur_start_, kSealedSuffix);
      if (!cur_sealed_ && fsys::exists(twin)) {
        cur_path_ = twin;
        cur_sealed_ = true;
        continue;  // same payload bytes, same offset
      }
      cur_path_.clear();
      const auto segments = list_segments();
      bool any_ahead = false;
      for (const auto& seg : segments) {
        any_ahead = any_ahead || seg.start > cur_start_;
      }
      if (!any_ahead) break;
      continue;
    }
    in.seekg(static_cast<std::streamoff>(offset_));
    std::string line;
    bool stalled = false;
    while (std::getline(in, line)) {
      if (in.eof()) {
        // getline without a trailing newline: an append still in flight (or
        // a torn tail). Retry from the same offset next poll.
        stalled = true;
        break;
      }
      if (!line.empty() && line[0] == '#') {
        cur_done_ = true;
        break;
      }
      Event e;
      if (!parse_event(line, e)) {
        // Torn/corrupt record: wait — a restarted writer truncates this
        // suffix before appending, at which point the offset is valid again.
        stalled = true;
        break;
      }
      offset_ += line.size() + 1;
      if (e.seq >= next_seq_) {
        fn(e);
        next_seq_ = e.seq + 1;
        ++delivered;
      }
    }
    in.clear();

    if (cur_done_) {
      // Advance to a later segment if one exists; otherwise stay positioned
      // at the drained segment (offset_ parked at its footer) so an idle
      // poll re-reads one line, not the whole file.
      const auto segments = list_segments();
      bool any_ahead = false;
      for (const auto& seg : segments) {
        any_ahead = any_ahead || seg.start > cur_start_;
      }
      if (!any_ahead) break;
      cur_path_.clear();
      continue;
    }
    if (stalled || !cur_sealed_) {
      // Mid-file on an open segment: check whether it was sealed under us
      // (footer now present past our offset) — handled next poll; check for
      // rotation now so a fully-read open segment does not wedge the tail.
      const std::string twin =
          dir_ + "/" + segment_name(cur_start_, kSealedSuffix);
      if (!cur_sealed_ && fsys::exists(twin)) {
        cur_path_ = twin;
        cur_sealed_ = true;
        continue;
      }
      break;
    }
    break;
  }
  if (delivered > 0) {
    obs::MetricsRegistry::global()
        .counter("wal.reader_delivered")
        .add(delivered);
  }
  return delivered;
}

}  // namespace adr::trace
