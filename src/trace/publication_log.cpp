#include "trace/publication_log.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "util/csv.hpp"
#include "util/io.hpp"
#include "util/parse.hpp"

namespace adr::trace {

void PublicationLog::add(PublicationRecord record) {
  records_.push_back(std::move(record));
}

void PublicationLog::sort_by_time() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const PublicationRecord& a, const PublicationRecord& b) {
                     return a.published < b.published;
                   });
}

void PublicationLog::save_csv(const std::string& path) const {
  util::io::AtomicWriter writer(path,
                                {.fsync = util::io::default_fsync()});
  util::CsvWriter w(writer.stream());
  w.write_row({"pub_id", "published", "citations", "authors"});
  for (const auto& r : records_) {
    std::string authors;
    for (std::size_t i = 0; i < r.authors.size(); ++i) {
      if (i) authors.push_back(';');
      authors += std::to_string(r.authors[i]);
    }
    w.write_row({std::to_string(r.pub_id), std::to_string(r.published),
                 std::to_string(r.citations), authors});
  }
  writer.commit();
}

PublicationLog PublicationLog::load_csv(const std::string& path,
                                        const util::ParseOptions& opts) {
  std::istringstream in(util::io::load_verified(path));
  util::CsvReader reader(in);
  if (!reader.read_header())
    throw std::runtime_error("PublicationLog: empty file " + path);
  PublicationLog log;
  const bool permissive = opts.policy == util::ParsePolicy::kPermissive;
  util::RowQuarantine quarantine(path, opts.quarantine_path);
  std::unordered_set<std::uint64_t> seen_ids;
  util::TimePoint prev_time = 0;
  bool first = true;
  while (auto row = reader.next()) {
    const util::RowContext ctx{&path, reader.line()};
    try {
      if (row->size() != 4) {
        throw util::ParseError(
            "PublicationLog: " + path + ":" + std::to_string(reader.line()) +
            ": expected 4 columns, got " + std::to_string(row->size()));
      }
      PublicationRecord r;
      r.pub_id = util::parse_u64((*row)[0], ctx, "pub_id");
      r.published = util::parse_i64((*row)[1], ctx, "published");
      r.citations = util::parse_i32((*row)[2], ctx, "citations");
      std::istringstream authors((*row)[3]);
      std::string tok;
      while (std::getline(authors, tok, ';')) {
        if (!tok.empty()) {
          r.authors.push_back(
              static_cast<UserId>(util::parse_u32(tok, ctx, "authors")));
        }
      }
      if (permissive) {
        if (r.pub_id != 0 && !seen_ids.insert(r.pub_id).second) {
          quarantine.add(reader.line(), util::RowQuarantine::kDuplicate,
                         "pub_id " + (*row)[0] + " already seen",
                         reader.raw());
          continue;
        }
        if (!first && r.published < prev_time) {
          quarantine.add(reader.line(), util::RowQuarantine::kOutOfOrder,
                         "published regressed below previous row",
                         reader.raw());
          continue;
        }
      }
      prev_time = r.published;
      first = false;
      log.add(std::move(r));
      if (opts.stats) ++opts.stats->rows_ok;
    } catch (const util::ParseError& e) {
      if (!permissive) throw;
      quarantine.add(reader.line(), util::RowQuarantine::kMalformed, e.what(),
                     reader.raw());
    }
  }
  quarantine.finish(opts.stats);
  return log;
}

}  // namespace adr::trace
