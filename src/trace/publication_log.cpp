#include "trace/publication_log.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace adr::trace {

void PublicationLog::add(PublicationRecord record) {
  records_.push_back(std::move(record));
}

void PublicationLog::sort_by_time() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const PublicationRecord& a, const PublicationRecord& b) {
                     return a.published < b.published;
                   });
}

void PublicationLog::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("PublicationLog: cannot write " + path);
  util::CsvWriter w(out);
  w.write_row({"pub_id", "published", "citations", "authors"});
  for (const auto& r : records_) {
    std::string authors;
    for (std::size_t i = 0; i < r.authors.size(); ++i) {
      if (i) authors.push_back(';');
      authors += std::to_string(r.authors[i]);
    }
    w.write_row({std::to_string(r.pub_id), std::to_string(r.published),
                 std::to_string(r.citations), authors});
  }
}

PublicationLog PublicationLog::load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("PublicationLog: cannot open " + path);
  util::CsvReader reader(in);
  if (!reader.read_header())
    throw std::runtime_error("PublicationLog: empty file " + path);
  PublicationLog log;
  while (auto row = reader.next()) {
    if (row->size() != 4)
      throw std::runtime_error("PublicationLog: malformed row in " + path);
    PublicationRecord r;
    r.pub_id = std::stoull((*row)[0]);
    r.published = std::stoll((*row)[1]);
    r.citations = std::stoi((*row)[2]);
    std::istringstream authors((*row)[3]);
    std::string tok;
    while (std::getline(authors, tok, ';')) {
      if (!tok.empty()) r.authors.push_back(static_cast<UserId>(std::stoul(tok)));
    }
    log.add(std::move(r));
  }
  return log;
}

}  // namespace adr::trace
