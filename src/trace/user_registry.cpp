#include "trace/user_registry.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/io.hpp"
#include "util/parse.hpp"

namespace adr::trace {

UserId UserRegistry::add(const std::string& name) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  const UserId id = static_cast<UserId>(names_.size());
  names_.push_back(name);
  by_name_.emplace(name, id);
  return id;
}

UserRegistry UserRegistry::with_synthetic_users(std::size_t n,
                                                const std::string& prefix) {
  UserRegistry reg;
  char buf[32];
  for (std::size_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof(buf), "%05zu", i);
    reg.add(prefix + buf);
  }
  return reg;
}

const std::string& UserRegistry::name(UserId id) const {
  if (!contains(id)) throw std::out_of_range("UserRegistry: bad id");
  return names_[id];
}

UserId UserRegistry::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidUser : it->second;
}

std::string UserRegistry::home_dir(UserId id) const {
  return "/scratch/" + name(id);
}

void UserRegistry::save_csv(const std::string& path) const {
  util::io::AtomicWriter writer(path,
                                {.fsync = util::io::default_fsync()});
  util::CsvWriter w(writer.stream());
  w.write_row({"user", "name"});
  for (std::size_t i = 0; i < names_.size(); ++i) {
    w.write_row({std::to_string(i), names_[i]});
  }
  writer.commit();
}

UserRegistry UserRegistry::load_csv(const std::string& path,
                                    const util::ParseOptions& opts) {
  std::istringstream in(util::io::load_verified(path));
  util::CsvReader reader(in);
  if (!reader.read_header())
    throw std::runtime_error("UserRegistry: empty file " + path);
  UserRegistry reg;
  const bool permissive = opts.policy == util::ParsePolicy::kPermissive;
  util::RowQuarantine quarantine(path, opts.quarantine_path);
  while (auto row = reader.next()) {
    const util::RowContext ctx{&path, reader.line()};
    try {
      if (row->size() != 2) {
        throw util::ParseError(
            "UserRegistry: " + path + ":" + std::to_string(reader.line()) +
            ": expected 2 columns, got " + std::to_string(row->size()));
      }
      const UserId expected =
          static_cast<UserId>(util::parse_u32((*row)[0], ctx, "user"));
      if ((*row)[1].empty()) {
        throw util::ParseError(ctx.describe("name") + ": empty user name");
      }
      if (permissive && reg.find((*row)[1]) != kInvalidUser) {
        quarantine.add(reader.line(), util::RowQuarantine::kDuplicate,
                       "name '" + (*row)[1] + "' already registered",
                       reader.raw());
        continue;
      }
      if (expected != reg.size()) {
        throw util::ParseError(ctx.describe("user") + ": non-dense id " +
                               (*row)[0] + " (expected " +
                               std::to_string(reg.size()) + ")");
      }
      reg.add((*row)[1]);
      if (opts.stats) ++opts.stats->rows_ok;
    } catch (const util::ParseError& e) {
      if (!permissive) throw;
      quarantine.add(reader.line(), util::RowQuarantine::kMalformed, e.what(),
                     reader.raw());
    }
  }
  quarantine.finish(opts.stats);
  return reg;
}

}  // namespace adr::trace
