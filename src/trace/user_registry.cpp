#include "trace/user_registry.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace adr::trace {

UserId UserRegistry::add(const std::string& name) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  const UserId id = static_cast<UserId>(names_.size());
  names_.push_back(name);
  by_name_.emplace(name, id);
  return id;
}

UserRegistry UserRegistry::with_synthetic_users(std::size_t n,
                                                const std::string& prefix) {
  UserRegistry reg;
  char buf[32];
  for (std::size_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof(buf), "%05zu", i);
    reg.add(prefix + buf);
  }
  return reg;
}

const std::string& UserRegistry::name(UserId id) const {
  if (!contains(id)) throw std::out_of_range("UserRegistry: bad id");
  return names_[id];
}

UserId UserRegistry::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidUser : it->second;
}

std::string UserRegistry::home_dir(UserId id) const {
  return "/scratch/" + name(id);
}

void UserRegistry::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("UserRegistry: cannot write " + path);
  util::CsvWriter w(out);
  w.write_row({"user", "name"});
  for (std::size_t i = 0; i < names_.size(); ++i) {
    w.write_row({std::to_string(i), names_[i]});
  }
}

UserRegistry UserRegistry::load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("UserRegistry: cannot open " + path);
  util::CsvReader reader(in);
  if (!reader.read_header())
    throw std::runtime_error("UserRegistry: empty file " + path);
  UserRegistry reg;
  while (auto row = reader.next()) {
    if (row->size() != 2)
      throw std::runtime_error("UserRegistry: malformed row in " + path);
    const UserId expected = static_cast<UserId>(std::stoul((*row)[0]));
    const UserId got = reg.add((*row)[1]);
    if (expected != got)
      throw std::runtime_error("UserRegistry: non-dense ids in " + path);
  }
  return reg;
}

}  // namespace adr::trace
