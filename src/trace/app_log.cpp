#include "trace/app_log.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/io.hpp"
#include "util/parse.hpp"

namespace adr::trace {

void AppLog::add(AppLogEntry entry) { entries_.push_back(std::move(entry)); }

void AppLog::sort_by_time() {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const AppLogEntry& a, const AppLogEntry& b) {
                     return a.timestamp < b.timestamp;
                   });
}

bool AppLog::is_sorted_by_time() const {
  return std::is_sorted(entries_.begin(), entries_.end(),
                        [](const AppLogEntry& a, const AppLogEntry& b) {
                          return a.timestamp < b.timestamp;
                        });
}

std::pair<std::size_t, std::size_t> AppLog::range(util::TimePoint begin,
                                                  util::TimePoint end) const {
  const auto lo = std::lower_bound(
      entries_.begin(), entries_.end(), begin,
      [](const AppLogEntry& e, util::TimePoint t) { return e.timestamp < t; });
  const auto hi = std::lower_bound(
      lo, entries_.end(), end,
      [](const AppLogEntry& e, util::TimePoint t) { return e.timestamp < t; });
  return {static_cast<std::size_t>(lo - entries_.begin()),
          static_cast<std::size_t>(hi - entries_.begin())};
}

void AppLog::save_csv(const std::string& path) const {
  util::io::AtomicWriter writer(path,
                                {.fsync = util::io::default_fsync()});
  util::CsvWriter w(writer.stream());
  w.write_row({"user", "timestamp", "op", "path", "size", "stripes"});
  for (const auto& e : entries_) {
    w.write_row({std::to_string(e.user), std::to_string(e.timestamp),
                 e.op == trace::FileOp::kCreate ? "create" : "access", e.path,
                 std::to_string(e.size_bytes), std::to_string(e.stripe_count)});
  }
  writer.commit();
}

AppLog AppLog::load_csv(const std::string& path,
                        const util::ParseOptions& opts) {
  std::istringstream in(util::io::load_verified(path));
  util::CsvReader reader(in);
  if (!reader.read_header())
    throw std::runtime_error("AppLog: empty file " + path);
  AppLog log;
  const bool permissive = opts.policy == util::ParsePolicy::kPermissive;
  util::RowQuarantine quarantine(path, opts.quarantine_path);
  std::string prev_raw;
  util::TimePoint prev_time = 0;
  bool first = true;
  while (auto row = reader.next()) {
    const util::RowContext ctx{&path, reader.line()};
    try {
      if (row->size() != 6) {
        throw util::ParseError("AppLog: " + path + ":" +
                               std::to_string(reader.line()) + ": expected 6 "
                               "columns, got " + std::to_string(row->size()));
      }
      AppLogEntry e;
      e.user = static_cast<UserId>(util::parse_u32((*row)[0], ctx, "user"));
      e.timestamp = util::parse_i64((*row)[1], ctx, "timestamp");
      if ((*row)[2] != "create" && (*row)[2] != "access") {
        throw util::ParseError(ctx.describe("op") +
                               ": expected create or access, got '" +
                               (*row)[2] + "'");
      }
      e.op = (*row)[2] == "create" ? FileOp::kCreate : FileOp::kAccess;
      e.path = (*row)[3];
      e.size_bytes = util::parse_u64((*row)[4], ctx, "size");
      e.stripe_count = util::parse_i32((*row)[5], ctx, "stripes");
      if (permissive) {
        // Site exports double-log lines often enough that adjacent exact
        // duplicates are quarantined; identical ops far apart are legal.
        if (!first && reader.raw() == prev_raw) {
          quarantine.add(reader.line(), util::RowQuarantine::kDuplicate,
                         "identical to previous row", reader.raw());
          continue;
        }
        if (!first && e.timestamp < prev_time) {
          quarantine.add(reader.line(), util::RowQuarantine::kOutOfOrder,
                         "timestamp regressed below previous row",
                         reader.raw());
          continue;
        }
      }
      prev_time = e.timestamp;
      prev_raw = reader.raw();
      first = false;
      log.add(std::move(e));
      if (opts.stats) ++opts.stats->rows_ok;
    } catch (const util::ParseError& e) {
      if (!permissive) throw;
      quarantine.add(reader.line(), util::RowQuarantine::kMalformed, e.what(),
                     reader.raw());
    }
  }
  quarantine.finish(opts.stats);
  return log;
}

}  // namespace adr::trace
