#include "trace/app_log.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace adr::trace {

void AppLog::add(AppLogEntry entry) { entries_.push_back(std::move(entry)); }

void AppLog::sort_by_time() {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const AppLogEntry& a, const AppLogEntry& b) {
                     return a.timestamp < b.timestamp;
                   });
}

bool AppLog::is_sorted_by_time() const {
  return std::is_sorted(entries_.begin(), entries_.end(),
                        [](const AppLogEntry& a, const AppLogEntry& b) {
                          return a.timestamp < b.timestamp;
                        });
}

std::pair<std::size_t, std::size_t> AppLog::range(util::TimePoint begin,
                                                  util::TimePoint end) const {
  const auto lo = std::lower_bound(
      entries_.begin(), entries_.end(), begin,
      [](const AppLogEntry& e, util::TimePoint t) { return e.timestamp < t; });
  const auto hi = std::lower_bound(
      lo, entries_.end(), end,
      [](const AppLogEntry& e, util::TimePoint t) { return e.timestamp < t; });
  return {static_cast<std::size_t>(lo - entries_.begin()),
          static_cast<std::size_t>(hi - entries_.begin())};
}

void AppLog::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("AppLog: cannot write " + path);
  util::CsvWriter w(out);
  w.write_row({"user", "timestamp", "op", "path", "size", "stripes"});
  for (const auto& e : entries_) {
    w.write_row({std::to_string(e.user), std::to_string(e.timestamp),
                 e.op == trace::FileOp::kCreate ? "create" : "access", e.path,
                 std::to_string(e.size_bytes), std::to_string(e.stripe_count)});
  }
}

AppLog AppLog::load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("AppLog: cannot open " + path);
  util::CsvReader reader(in);
  if (!reader.read_header())
    throw std::runtime_error("AppLog: empty file " + path);
  AppLog log;
  while (auto row = reader.next()) {
    if (row->size() != 6)
      throw std::runtime_error("AppLog: malformed row in " + path);
    AppLogEntry e;
    e.user = static_cast<UserId>(std::stoul((*row)[0]));
    e.timestamp = std::stoll((*row)[1]);
    e.op = (*row)[2] == "create" ? FileOp::kCreate : FileOp::kAccess;
    e.path = (*row)[3];
    e.size_bytes = std::stoull((*row)[4]);
    e.stripe_count = std::stoi((*row)[5]);
    log.add(std::move(e));
  }
  return log;
}

}  // namespace adr::trace
