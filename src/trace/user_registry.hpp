#pragma once
// Registry of (anonymized) system users: dense UserId <-> name mapping.
// Mirrors the paper's list of 13,813 anonymized Titan users.

#include <string>
#include <unordered_map>
#include <vector>

#include "trace/types.hpp"
#include "util/parse.hpp"

namespace adr::trace {

class UserRegistry {
 public:
  /// Register a user; returns its dense id. Re-registering a name returns
  /// the existing id.
  UserId add(const std::string& name);

  /// Create `n` users named "<prefix>NNNNN".
  static UserRegistry with_synthetic_users(std::size_t n,
                                           const std::string& prefix = "user_");

  std::size_t size() const { return names_.size(); }
  bool contains(UserId id) const { return id < names_.size(); }

  const std::string& name(UserId id) const;
  UserId find(const std::string& name) const;  ///< kInvalidUser if absent

  /// Scratch-space home directory of a user ("/scratch/<name>").
  std::string home_dir(UserId id) const;

  /// CSV persistence (header: user,name).
  void save_csv(const std::string& path) const;
  static UserRegistry load_csv(const std::string& path,
                               const util::ParseOptions& opts = {});

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, UserId> by_name_;
};

}  // namespace adr::trace
