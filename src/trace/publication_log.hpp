#pragma once
// Publication list container with CSV persistence.

#include <string>
#include <vector>

#include "trace/types.hpp"
#include "util/parse.hpp"

namespace adr::trace {

class PublicationLog {
 public:
  void add(PublicationRecord record);
  void reserve(std::size_t n) { records_.reserve(n); }

  void sort_by_time();

  const std::vector<PublicationRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// CSV persistence. Authors are encoded as ';'-separated user ids in one
  /// quoted field (header: pub_id,published,citations,authors).
  void save_csv(const std::string& path) const;
  static PublicationLog load_csv(const std::string& path,
                                 const util::ParseOptions& opts = {});

 private:
  std::vector<PublicationRecord> records_;
};

}  // namespace adr::trace
