#pragma once
// Append-only retention event log — the daemon's WAL (DESIGN.md §13).
//
// Robinhood-style resident policy engines are fed by a changelog, not by
// rescans: every state change the retention pipeline cares about (a job
// submission, a publication, a file access/create/remove) is appended here
// as one self-checksummed record, and `activedr serve` tails the log to
// keep rank + purge state warm. The log doubles as the recovery WAL: a
// restart replays the tail past the last checkpoint, and a cold one-shot
// run replays the whole log — both must land byte-identical state.
//
// On-disk layout (one directory):
//
//   wal-<start-seq>.open   the active segment, plain appended CSV lines
//   wal-<start-seq>.seg    sealed segments: same payload bytes re-committed
//                          through the §10 AtomicWriter with a CRC footer
//
// Record format (one CSV line; `crc` is the CRC32 of the line up to and
// excluding the final ",<crc>" field, so each record verifies alone):
//
//   seq,kind,user,timestamp,impact,path,size,stripes,crc
//
// Torn tails: only the *open* segment can tear (a crashed append), and the
// per-line CRC plus newline framing make the damage a strict suffix — the
// reader salvages every intact record and drops the rest, exactly the
// PurgeLedger salvage contract; the writer truncates the torn suffix on
// restart before appending. Sealed segments are whole-file verified; a
// sealed segment that fails its footer is quarantined, never applied.
//
// Sequence numbers are assigned by the writer, contiguous from 1. They are
// the replay-idempotence key: appliers track the last applied seq and skip
// records at or below it, so replaying a tail twice is a no-op.
//
// Fault points: wal.append.open (fail), wal.append.write (short/enospc),
// wal.seal.pre_remove (crash between the sealed segment's commit and the
// open file's removal); sealing also passes through every io.atomic.*
// point. Single writer at a time; the reader may tail concurrently.

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "trace/types.hpp"
#include "util/backoff.hpp"
#include "util/time.hpp"

namespace adr::trace {

enum class EventKind : std::uint8_t {
  kJob = 0,          ///< operation activity (impact = weighted core-hours)
  kPublication = 1,  ///< outcome activity (impact = Eq. 8, already per-author)
  kAccess = 2,       ///< file atime bump (miss if absent)
  kCreate = 3,       ///< file create/overwrite (size_bytes, stripe_count)
  kRemove = 4,       ///< file removal
};

const char* to_string(EventKind kind);
bool parse_event_kind(const std::string& text, EventKind& out);

/// One WAL record.
struct Event {
  std::uint64_t seq = 0;  ///< assigned by EventLogWriter (contiguous from 1)
  EventKind kind = EventKind::kJob;
  UserId user = kInvalidUser;
  util::TimePoint timestamp = 0;
  double impact = 0.0;            ///< kJob / kPublication
  std::string path;               ///< file events
  std::uint64_t size_bytes = 0;   ///< kCreate
  std::int32_t stripe_count = 1;  ///< kCreate

  bool operator==(const Event&) const = default;
};

/// Trace-record -> event conversions (shared by `activedr feed`, the
/// daemon tests, and the one-shot --wal replay). Impacts match the bulk
/// ingest paths exactly: jobs carry weight x core-hours, publications fan
/// out to one event per author with the Eq. 8 impact.
Event make_job_event(const JobRecord& job, double weight = 1.0);
std::vector<Event> make_publication_events(const PublicationRecord& pub,
                                           double weight = 1.0);
Event make_app_event(const AppLogEntry& entry);

/// Serialize / parse one record line (no trailing newline). parse_event
/// returns false on malformed or checksum-failing lines.
std::string format_event(const Event& event);
bool parse_event(const std::string& line, Event& out);

struct EventLogOptions {
  /// Seal the open segment once it holds this many records.
  std::uint64_t rotate_events = 4096;
  /// fsync the open segment on every flush() (crash durability of the
  /// tail, not just atomicity).
  bool fsync = false;
  /// Retry budget for append() against *transient* faults — EINTR, an
  /// ENOSPC burst, a torn line (DESIGN.md §14.3). Each re-attempt first
  /// truncates the torn partial line back off the tail, so a retried
  /// record lands exactly once at the same seq. Fatal errors and injected
  /// crashes surface immediately. max_attempts = 1 (the default) keeps
  /// the historical throw-on-first-failure behaviour.
  util::BackoffPolicy retry{.max_attempts = 1};
};

/// What a salvage pass over the log observed.
struct WalSalvage {
  std::size_t events = 0;         ///< intact records read
  std::size_t dropped_lines = 0;  ///< torn/corrupt lines dropped
  bool torn_tail = false;         ///< the open segment ended mid-record
};

/// Single-writer appender with segment rotation.
class EventLogWriter {
 public:
  explicit EventLogWriter(std::string dir, EventLogOptions opts = {});
  ~EventLogWriter();
  EventLogWriter(const EventLogWriter&) = delete;
  EventLogWriter& operator=(const EventLogWriter&) = delete;

  /// Append one record: assigns the next seq (ignoring event.seq), writes
  /// and flushes the line, rotates if the segment is full. Returns the
  /// assigned seq. Throws on IO failure — a torn partial line may then be
  /// on disk, exactly as a crash would leave it.
  std::uint64_t append(Event event);

  /// Seal the open segment as a §10-footered .seg (no-op when the open
  /// segment is empty, which just removes it). Called by rotation, by the
  /// daemon's graceful shutdown, and by `feed --seal`.
  void seal();

  /// Flush (and optionally fsync) the open segment.
  void flush();

  std::uint64_t next_seq() const { return next_seq_; }
  const std::string& dir() const { return dir_; }

 private:
  void open_segment();
  /// One write attempt of a fully formatted line (fault-injected); throws
  /// on short/failed writes, leaving any torn partial line on disk.
  void append_attempt(const std::string& line);

  std::string dir_;
  EventLogOptions opts_;
  std::uint64_t next_seq_ = 1;       // next seq to assign
  std::uint64_t segment_start_ = 1;  // first seq of the open segment
  std::uint64_t segment_events_ = 0;
  std::string open_path_;            // "" when no open segment exists
  std::ofstream out_;
  std::uint64_t write_offset_ = 0;   // fault-injection byte offset
};

/// Reader over a WAL directory: one-shot recovery reads and incremental
/// tailing. Tailing only ever advances past complete, checksum-valid
/// lines, so it stays consistent across writer restarts that truncate a
/// torn tail, and across seals (sealed segments keep the open segment's
/// payload bytes at the same offsets).
class EventLogReader {
 public:
  explicit EventLogReader(std::string dir);

  /// Every record with seq > after_seq, in seq order: sealed segments are
  /// footer-verified (a corrupt one is quarantined and throws
  /// util::io::ArtifactCorrupt), the open segment is salvaged per line.
  std::vector<Event> read_after(std::uint64_t after_seq,
                                WalSalvage* salvage = nullptr);

  /// Tailing: deliver records not yet seen by this reader (seq order),
  /// returning how many were delivered. Safe to call while a writer
  /// appends; a partially written final line is retried on the next poll.
  std::size_t poll(const std::function<void(const Event&)>& fn);

  /// Position the tailer so poll() delivers only records with seq >
  /// after_seq (used after checkpoint recovery).
  void seek(std::uint64_t after_seq);

  std::uint64_t next_seq() const { return next_seq_; }
  const std::string& dir() const { return dir_; }

 private:
  struct SegmentFile {
    std::uint64_t start = 0;
    bool sealed = false;  // prefer .seg when both exist
    std::string path;
  };
  std::vector<SegmentFile> list_segments() const;

  std::string dir_;
  std::uint64_t next_seq_ = 1;   // next seq poll() expects to deliver
  std::string cur_path_;         // file the tailer is positioned in
  std::uint64_t cur_start_ = 0;
  bool cur_sealed_ = false;
  std::uint64_t offset_ = 0;     // byte offset of the next unread line
  bool cur_done_ = false;        // saw the footer (sealed segment drained)
};

}  // namespace adr::trace
