#pragma once
// Application log: the file paths touched by application executions. The
// emulator replays these entries to drive atime updates and to count file
// misses (an entry whose path is no longer in the virtual file system).

#include <string>
#include <vector>

#include "trace/types.hpp"
#include "util/parse.hpp"

namespace adr::trace {

class AppLog {
 public:
  void add(AppLogEntry entry);
  void reserve(std::size_t n) { entries_.reserve(n); }

  void sort_by_time();
  bool is_sorted_by_time() const;

  const std::vector<AppLogEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Entries with timestamp in [begin, end) — assumes sorted order and uses
  /// binary search; returns [first, last) indices.
  std::pair<std::size_t, std::size_t> range(util::TimePoint begin,
                                            util::TimePoint end) const;

  /// CSV persistence (header: user,timestamp,path).
  void save_csv(const std::string& path) const;
  static AppLog load_csv(const std::string& path,
                         const util::ParseOptions& opts = {});

 private:
  std::vector<AppLogEntry> entries_;
};

}  // namespace adr::trace
