#pragma once
// Compact prefix tree (radix tree) over path components.
//
// The paper uses one "compact prefix tree" structure in three places: as the
// virtual file system index for replay, as the snapshot index, and as the
// purge-exemption reservation list. This is that structure. Edges are
// compressed at path-component granularity (an edge may span several
// components, and is split lazily on insert), so deep per-user directory
// chains cost one node, not one node per level.
//
// Concurrency: const traversal (find / for_each*) is safe from many threads
// as long as no thread mutates; mutation is single-threaded. This matches
// the scan-then-apply shape of the retention policies.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fs/file_meta.hpp"

namespace adr::fs {

/// Split an absolute path into components; collapses repeated '/'.
/// "/scratch/u1//a.dat" -> {"scratch", "u1", "a.dat"}.
std::vector<std::string> split_path(std::string_view path);

/// Canonical form: '/' + components joined by '/'.
std::string join_path(const std::vector<std::string>& components);

class PathTrie {
 public:
  PathTrie();
  ~PathTrie();
  PathTrie(PathTrie&&) noexcept;
  PathTrie& operator=(PathTrie&&) noexcept;
  PathTrie(const PathTrie&) = delete;
  PathTrie& operator=(const PathTrie&) = delete;

  /// Insert or overwrite the file at `path`. Returns true if newly created.
  bool insert(std::string_view path, const FileMeta& meta);

  /// Metadata for an exact file path, or nullptr.
  const FileMeta* find(std::string_view path) const;
  FileMeta* find(std::string_view path);

  bool contains(std::string_view path) const { return find(path) != nullptr; }

  /// Remove the file at `path`; prunes now-empty interior nodes.
  /// Returns false if no such file.
  bool erase(std::string_view path);

  /// True if any file exists at or below `prefix` (a directory or file path).
  bool contains_under(std::string_view prefix) const;

  /// True if some stored path is a component-wise prefix of `path`
  /// (including an exact match) — the exemption-list query: a reserved
  /// directory covers everything beneath it.
  bool contains_prefix_of(std::string_view path) const;

  /// Visit every file at or below `prefix` ("" or "/" = whole tree), in
  /// depth-first lexicographic edge order, as (canonical path, meta).
  void for_each_under(
      std::string_view prefix,
      const std::function<void(const std::string&, const FileMeta&)>& fn) const;

  /// Visit every file in the tree.
  void for_each(
      const std::function<void(const std::string&, const FileMeta&)>& fn) const;

  std::size_t file_count() const { return file_count_; }
  bool empty() const { return file_count_ == 0; }

  /// Number of allocated trie nodes — the compaction metric surfaced by the
  /// Fig. 12 memory benches.
  std::size_t node_count() const { return node_count_; }

  /// Approximate heap footprint in bytes (nodes + edge strings).
  std::size_t memory_bytes() const;

  void clear();

  /// Opaque node type (public so free traversal helpers can name it).
  struct Node;

 private:
  bool insert_components(Node* node, const std::vector<std::string>& comps,
                         std::size_t i, const FileMeta& meta);
  const Node* descend(const std::vector<std::string>& comps,
                      std::string* out_prefix) const;

  std::unique_ptr<Node> root_;
  std::size_t file_count_ = 0;
  std::size_t node_count_ = 0;
};

}  // namespace adr::fs
