#include "fs/vfs.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace adr::fs {

namespace {

obs::Counter& creates_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("vfs.creates");
  return c;
}

obs::Counter& overwrites_total() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("vfs.overwrites");
  return c;
}

obs::Counter& accesses_total() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("vfs.accesses");
  return c;
}

obs::Counter& misses_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("vfs.misses");
  return c;
}

obs::Counter& removes_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("vfs.removes");
  return c;
}

}  // namespace

bool Vfs::create(std::string_view path, const FileMeta& meta) {
  creates_total().add();
  if (FileMeta* existing = trie_.find(path)) {
    overwrites_total().add();
    // The displaced version leaves the scratch tier exactly like a removal
    // does — without routing it through the sink, replayed overwrites would
    // silently drop the old version from the archive tier.
    if (removal_sink_) removal_sink_(std::string(path), *existing);
    account_remove(*existing);
    *existing = meta;
    account_add(meta);
    return false;
  }
  trie_.insert(path, meta);
  account_add(meta);
  return true;
}

bool Vfs::access(std::string_view path, util::TimePoint t) {
  accesses_total().add();
  FileMeta* meta = trie_.find(path);
  if (!meta) {
    misses_total().add();
    return false;
  }
  meta->atime = std::max(meta->atime, t);
  ++meta->access_count;
  return true;
}

bool Vfs::remove(std::string_view path) {
  const FileMeta* meta = trie_.find(path);
  if (!meta) return false;
  removes_total().add();
  if (removal_sink_) removal_sink_(std::string(path), *meta);
  account_remove(*meta);
  trie_.erase(path);
  return true;
}

UserUsage Vfs::usage(trace::UserId user) const {
  const auto it = usage_.find(user);
  return it == usage_.end() ? UserUsage{} : it->second;
}

void Vfs::import_snapshot(const trace::Snapshot& snapshot) {
  for (const auto& e : snapshot.entries()) {
    FileMeta meta;
    meta.owner = e.owner;
    meta.stripe_count = e.stripe_count;
    meta.size_bytes = e.size_bytes;
    meta.atime = e.atime;
    meta.ctime = e.atime;
    create(e.path, meta);
  }
}

trace::Snapshot Vfs::export_snapshot() const {
  trace::Snapshot snap;
  snap.reserve(file_count());
  trie_.for_each([&](const std::string& path, const FileMeta& meta) {
    trace::SnapshotEntry e;
    e.path = path;
    e.owner = meta.owner;
    e.stripe_count = meta.stripe_count;
    e.size_bytes = meta.size_bytes;
    e.atime = meta.atime;
    snap.add(std::move(e));
  });
  return snap;
}

void Vfs::clear() {
  trie_.clear();
  total_bytes_ = 0;
  capacity_bytes_ = 0;
  usage_.clear();
}

void Vfs::account_add(const FileMeta& meta) {
  total_bytes_ += meta.size_bytes;
  auto& u = usage_[meta.owner];
  u.bytes += meta.size_bytes;
  u.files += 1;
}

void Vfs::account_remove(const FileMeta& meta) {
  total_bytes_ -= meta.size_bytes;
  const auto it = usage_.find(meta.owner);
  if (it == usage_.end()) return;
  auto& u = it->second;
  u.bytes -= meta.size_bytes;
  u.files -= 1;
  // Drop empty entries: over a year-long replay, users churn through
  // ownership (purge + recreate, overwrite ownership changes) and a
  // never-shrinking map would grow monotonically.
  if (u.files == 0) usage_.erase(it);
}

}  // namespace adr::fs
