#include "fs/vfs.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"

namespace adr::fs {

namespace {

// Estimated trie bytes per resident file beyond its path characters:
// roughly one compressed node (children vector header, edge string header,
// FileMeta slot). Calibrated against PathTrie::memory_bytes on synthetic
// user trees; the budget model only needs to be proportionally right.
constexpr std::uint64_t kResidentNodeCost = 96;

obs::Counter& creates_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("vfs.creates");
  return c;
}

obs::Counter& overwrites_total() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("vfs.overwrites");
  return c;
}

obs::Counter& accesses_total() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("vfs.accesses");
  return c;
}

obs::Counter& misses_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("vfs.misses");
  return c;
}

obs::Counter& removes_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("vfs.removes");
  return c;
}

obs::Counter& evictions_total() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("vfs.evictions");
  return c;
}

obs::Counter& faults_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("vfs.faults");
  return c;
}

obs::Gauge& resident_gauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::global().gauge("vfs.resident_bytes");
  return g;
}

obs::Gauge& spilled_gauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::global().gauge("vfs.spilled_bytes");
  return g;
}

std::uint64_t file_cost(std::string_view path) {
  return path.size() + kResidentNodeCost;
}

}  // namespace

bool Vfs::create(std::string_view path, const FileMeta& meta) {
  creates_total().add();
  // An evicted owner's own file may live at this path; fault first so the
  // overwrite re-keys instead of double-inserting.
  maybe_fault(meta.owner);
  if (FileMeta* existing = trie_.find(path)) {
    overwrites_total().add();
    const FileMeta displaced = *existing;
    // The displaced version leaves the scratch tier exactly like a removal
    // does — without routing it through the sink, replayed overwrites would
    // silently drop the old version from the archive tier.
    if (removal_sink_) removal_sink_(std::string(path), displaced);
    account_remove(displaced);
    *existing = meta;
    existing->path_id = displaced.path_id;  // the path keeps its id
    account_add(*existing);
    purge_index_.update(displaced, *existing);
    if (displaced.owner != meta.owner) {
      // Resident cost moves with ownership.
      auto& from = residency(displaced.owner);
      const std::uint64_t cost = file_cost(path);
      from.resident_cost -= std::min(from.resident_cost, cost);
      residency(meta.owner).resident_cost += cost;
    }
    touch_user(meta.owner);
    return false;
  }
  FileMeta stored = meta;
  stored.path_id = purge_index_.intern(path);
  trie_.insert(path, stored);
  account_add(stored);
  purge_index_.add(stored);
  residency(stored.owner).resident_cost += file_cost(path);
  resident_cost_ += file_cost(path);
  touch_user(stored.owner);
  enforce_budget();
  return true;
}

bool Vfs::access(std::string_view path, util::TimePoint t,
                 trace::UserId owner_hint) {
  accesses_total().add();
  FileMeta* meta = trie_.find(path);
  if (!meta && maybe_fault(owner_hint)) meta = trie_.find(path);
  if (!meta) {
    misses_total().add();
    return false;
  }
  if (t > meta->atime) {  // atime is monotone; no re-key when unchanged
    purge_index_.touch(*meta, t);
    meta->atime = t;
  }
  ++meta->access_count;
  touch_user(meta->owner);
  return true;
}

bool Vfs::remove(std::string_view path, trace::UserId owner_hint) {
  const FileMeta* found = trie_.find(path);
  if (!found && maybe_fault(owner_hint)) found = trie_.find(path);
  if (!found) return false;
  const FileMeta meta = *found;
  removes_total().add();
  if (removal_sink_) removal_sink_(std::string(path), meta);
  account_remove(meta);
  const std::uint64_t cost = file_cost(path);
  auto& res = residency(meta.owner);
  res.resident_cost -= std::min(res.resident_cost, cost);
  resident_cost_ -= std::min(resident_cost_, cost);
  resident_gauge().set(static_cast<std::int64_t>(resident_cost_));
  trie_.erase(path);
  // Index last: `path` may alias the interned string this releases, and
  // the slot's storage survives until the id is recycled by a later create.
  purge_index_.remove(meta);
  return true;
}

// -- residency ---------------------------------------------------------------

void Vfs::set_memory_budget_bytes(std::uint64_t budget) {
  budget_bytes_ = budget;
  enforce_budget();
}

bool Vfs::user_resident(trace::UserId user) const {
  return user == trace::kInvalidUser ||
         static_cast<std::size_t>(user) >= residency_.size() ||
         !residency_[user].evicted;
}

Vfs::UserResidency& Vfs::residency(trace::UserId user) {
  assert(user != trace::kInvalidUser);
  if (static_cast<std::size_t>(user) >= residency_.size()) {
    residency_.resize(static_cast<std::size_t>(user) + 1);
  }
  return residency_[user];
}

void Vfs::touch_user(trace::UserId user) {
  residency(user).last_touch = ++touch_tick_;
}

bool Vfs::maybe_fault(trace::UserId owner_hint) {
  if (user_resident(owner_hint)) return false;
  fault_user(owner_hint);
  return true;
}

void Vfs::evict_user(trace::UserId user) {
  if (user == trace::kInvalidUser || !user_resident(user)) return;
  if (!purge_index_.has_entries(user)) return;
  UserResidency& res = residency(user);
  const std::vector<PurgeIndex::Entry> entries = purge_index_.entries(user);
  res.spill.clear();
  res.spill.reserve(entries.size());
  for (const PurgeIndex::Entry& e : entries) {
    const std::string& path = purge_index_.path(e.id);
    const FileMeta* meta = trie_.find(path);
    assert(meta != nullptr && meta->owner == user);
    res.spill.push_back(
        {e.id, meta->stripe_count, meta->ctime, meta->access_count});
    trie_.erase(path);
  }
  res.evicted = true;
  resident_cost_ -= std::min(resident_cost_, res.resident_cost);
  res.resident_cost = 0;
  spilled_files_ += res.spill.size();
  spilled_bytes_ += res.spill.size() * sizeof(SpillRecord);
  ++evicted_users_;
  evictions_total().add();
  resident_gauge().set(static_cast<std::int64_t>(resident_cost_));
  spilled_gauge().set(static_cast<std::int64_t>(spilled_bytes_));
}

void Vfs::fault_user(trace::UserId user) {
  if (user == trace::kInvalidUser || user_resident(user)) return;
  UserResidency& res = residency(user);
  // While evicted the owner's index entries are frozen (every mutation
  // faults first), so entries() aligns positionally with the spill records.
  const std::vector<PurgeIndex::Entry> entries = purge_index_.entries(user);
  assert(entries.size() == res.spill.size());
  std::uint64_t cost = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const PurgeIndex::Entry& e = entries[i];
    const SpillRecord& rec = res.spill[i];
    assert(rec.id == e.id);
    FileMeta meta;
    meta.owner = user;
    meta.size_bytes = e.size_bytes;
    meta.atime = e.atime;
    meta.path_id = e.id;
    meta.stripe_count = rec.stripe_count;
    meta.ctime = rec.ctime;
    meta.access_count = rec.access_count;
    const std::string& path = purge_index_.path(e.id);
    trie_.insert(path, meta);
    cost += file_cost(path);
  }
  spilled_files_ -= res.spill.size();
  spilled_bytes_ -= res.spill.size() * sizeof(SpillRecord);
  res.spill.clear();
  res.spill.shrink_to_fit();
  res.evicted = false;
  res.resident_cost = cost;
  resident_cost_ += cost;
  --evicted_users_;
  faults_total().add();
  touch_user(user);
  resident_gauge().set(static_cast<std::int64_t>(resident_cost_));
  spilled_gauge().set(static_cast<std::int64_t>(spilled_bytes_));
  enforce_budget();
}

void Vfs::enforce_budget() {
  if (budget_bytes_ == 0 || resident_cost_ <= budget_bytes_) return;
  const std::uint64_t low_watermark = budget_bytes_ - budget_bytes_ / 8;
  // One coldness-ordered sweep per overflow; eviction batches down to the
  // watermark so the scan amortizes over many mutations.
  std::vector<trace::UserId> candidates;
  for (std::size_t u = 0; u < residency_.size(); ++u) {
    const UserResidency& res = residency_[u];
    // Never evict the user touched by the in-flight op (highest tick):
    // a single over-budget user would otherwise thrash itself.
    if (res.evicted || res.resident_cost == 0 ||
        res.last_touch == touch_tick_) {
      continue;
    }
    candidates.push_back(static_cast<trace::UserId>(u));
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](trace::UserId a, trace::UserId b) {
              return residency_[a].last_touch < residency_[b].last_touch;
            });
  for (const trace::UserId u : candidates) {
    if (resident_cost_ <= low_watermark) break;
    evict_user(u);
  }
}

// -- verification / snapshot --------------------------------------------------

bool Vfs::verify_purge_index(std::string* error) const {
  bool ok = true;
  std::size_t walked = 0;
  trie_.for_each([&](const std::string& path, const FileMeta& meta) {
    ++walked;
    if (!ok) return;
    if (meta.path_id == kInvalidPathId) {
      ok = false;
      if (error) *error = "file without interned path id: " + path;
      return;
    }
    if (!purge_index_.contains(meta)) {
      ok = false;
      if (error) {
        *error = "index entry missing or stale for " + path + " (owner " +
                 std::to_string(meta.owner) + ", atime " +
                 std::to_string(meta.atime) + ")";
      }
      return;
    }
    if (purge_index_.path(meta.path_id) != path) {
      ok = false;
      if (error) {
        *error = "path id " + std::to_string(meta.path_id) + " interned as '" +
                 purge_index_.path(meta.path_id) + "' but trie holds '" +
                 path + "'";
      }
    }
  });
  // Evicted users are absent from the walk; their files must be covered by
  // spill records aligned with the (frozen) index entries.
  for (std::size_t u = 0; ok && u < residency_.size(); ++u) {
    const UserResidency& res = residency_[u];
    if (!res.evicted) continue;
    const auto entries =
        purge_index_.entries(static_cast<trace::UserId>(u));
    if (entries.size() != res.spill.size()) {
      ok = false;
      if (error) {
        *error = "evicted user " + std::to_string(u) + " holds " +
                 std::to_string(res.spill.size()) + " spill records but " +
                 std::to_string(entries.size()) + " index entries";
      }
      break;
    }
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].id != res.spill[i].id) {
        ok = false;
        if (error) {
          *error = "evicted user " + std::to_string(u) +
                   " spill record misaligned at position " + std::to_string(i);
        }
        break;
      }
    }
    walked += res.spill.size();
  }
  if (ok && purge_index_.entry_count() != walked) {
    ok = false;
    if (error) {
      *error = "index holds " + std::to_string(purge_index_.entry_count()) +
               " entries but the walk covered " + std::to_string(walked) +
               " files";
    }
  }
  return ok;
}

UserUsage Vfs::usage(trace::UserId user) const {
  if (user == trace::kInvalidUser ||
      static_cast<std::size_t>(user) >= usage_.size()) {
    return UserUsage{};
  }
  return usage_[user];
}

void Vfs::import_snapshot(const trace::Snapshot& snapshot) {
  for (const auto& e : snapshot.entries()) {
    FileMeta meta;
    meta.owner = e.owner;
    meta.stripe_count = e.stripe_count;
    meta.size_bytes = e.size_bytes;
    meta.atime = e.atime;
    meta.ctime = e.atime;
    create(e.path, meta);
  }
}

trace::Snapshot Vfs::export_snapshot() const {
  trace::Snapshot snap;
  snap.reserve(file_count());
  trie_.for_each([&](const std::string& path, const FileMeta& meta) {
    trace::SnapshotEntry e;
    e.path = path;
    e.owner = meta.owner;
    e.stripe_count = meta.stripe_count;
    e.size_bytes = meta.size_bytes;
    e.atime = meta.atime;
    snap.add(std::move(e));
  });
  for (std::size_t u = 0; u < residency_.size(); ++u) {
    const UserResidency& res = residency_[u];
    if (!res.evicted) continue;
    const auto entries =
        purge_index_.entries(static_cast<trace::UserId>(u));
    for (std::size_t i = 0; i < entries.size(); ++i) {
      trace::SnapshotEntry e;
      e.path = purge_index_.path(entries[i].id);
      e.owner = static_cast<trace::UserId>(u);
      e.stripe_count = res.spill[i].stripe_count;
      e.size_bytes = entries[i].size_bytes;
      e.atime = entries[i].atime;
      snap.add(std::move(e));
    }
  }
  return snap;
}

void Vfs::clear() {
  trie_.clear();
  purge_index_.clear();
  total_bytes_ = 0;
  capacity_bytes_ = 0;
  usage_.clear();
  users_with_files_ = 0;
  residency_.clear();
  budget_bytes_ = 0;
  resident_cost_ = 0;
  spilled_bytes_ = 0;
  spilled_files_ = 0;
  evicted_users_ = 0;
  touch_tick_ = 0;
  resident_gauge().set(0);
  spilled_gauge().set(0);
}

void Vfs::account_add(const FileMeta& meta) {
  total_bytes_ += meta.size_bytes;
  assert(meta.owner != trace::kInvalidUser);
  if (static_cast<std::size_t>(meta.owner) >= usage_.size()) {
    usage_.resize(static_cast<std::size_t>(meta.owner) + 1);
  }
  auto& u = usage_[meta.owner];
  if (u.files == 0) ++users_with_files_;
  u.bytes += meta.size_bytes;
  u.files += 1;
}

void Vfs::account_remove(const FileMeta& meta) {
  total_bytes_ -= meta.size_bytes;
  if (static_cast<std::size_t>(meta.owner) >= usage_.size()) return;
  auto& u = usage_[meta.owner];
  u.bytes -= meta.size_bytes;
  u.files -= 1;
  // The slot stays (dense table); size()/count() skip empty users, so over a
  // year-long replay churned-out owners cost 16 B each, not a map node.
  if (u.files == 0) {
    u.bytes = 0;
    --users_with_files_;
  }
}

}  // namespace adr::fs
