#include "fs/vfs.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace adr::fs {

namespace {

obs::Counter& creates_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("vfs.creates");
  return c;
}

obs::Counter& overwrites_total() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("vfs.overwrites");
  return c;
}

obs::Counter& accesses_total() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("vfs.accesses");
  return c;
}

obs::Counter& misses_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("vfs.misses");
  return c;
}

obs::Counter& removes_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("vfs.removes");
  return c;
}

}  // namespace

bool Vfs::create(std::string_view path, const FileMeta& meta) {
  creates_total().add();
  if (FileMeta* existing = trie_.find(path)) {
    overwrites_total().add();
    const FileMeta displaced = *existing;
    // The displaced version leaves the scratch tier exactly like a removal
    // does — without routing it through the sink, replayed overwrites would
    // silently drop the old version from the archive tier.
    if (removal_sink_) removal_sink_(std::string(path), displaced);
    account_remove(displaced);
    *existing = meta;
    existing->path_id = displaced.path_id;  // the path keeps its id
    account_add(*existing);
    purge_index_.update(displaced, *existing);
    return false;
  }
  FileMeta stored = meta;
  stored.path_id = purge_index_.intern(path);
  trie_.insert(path, stored);
  account_add(stored);
  purge_index_.add(stored);
  return true;
}

bool Vfs::access(std::string_view path, util::TimePoint t) {
  accesses_total().add();
  FileMeta* meta = trie_.find(path);
  if (!meta) {
    misses_total().add();
    return false;
  }
  if (t > meta->atime) {  // atime is monotone; no re-key when unchanged
    purge_index_.touch(*meta, t);
    meta->atime = t;
  }
  ++meta->access_count;
  return true;
}

bool Vfs::remove(std::string_view path) {
  const FileMeta* found = trie_.find(path);
  if (!found) return false;
  const FileMeta meta = *found;
  removes_total().add();
  if (removal_sink_) removal_sink_(std::string(path), meta);
  account_remove(meta);
  trie_.erase(path);
  // Index last: `path` may alias the interned string this releases, and
  // the slot's storage survives until the id is recycled by a later create.
  purge_index_.remove(meta);
  return true;
}

bool Vfs::verify_purge_index(std::string* error) const {
  bool ok = true;
  std::size_t walked = 0;
  trie_.for_each([&](const std::string& path, const FileMeta& meta) {
    ++walked;
    if (!ok) return;
    if (meta.path_id == kInvalidPathId) {
      ok = false;
      if (error) *error = "file without interned path id: " + path;
      return;
    }
    if (!purge_index_.contains(meta)) {
      ok = false;
      if (error) {
        *error = "index entry missing or stale for " + path + " (owner " +
                 std::to_string(meta.owner) + ", atime " +
                 std::to_string(meta.atime) + ")";
      }
      return;
    }
    if (purge_index_.path(meta.path_id) != path) {
      ok = false;
      if (error) {
        *error = "path id " + std::to_string(meta.path_id) + " interned as '" +
                 purge_index_.path(meta.path_id) + "' but trie holds '" +
                 path + "'";
      }
    }
  });
  if (ok && purge_index_.entry_count() != walked) {
    ok = false;
    if (error) {
      *error = "index holds " + std::to_string(purge_index_.entry_count()) +
               " entries but the trie walk found " + std::to_string(walked);
    }
  }
  return ok;
}

UserUsage Vfs::usage(trace::UserId user) const {
  const auto it = usage_.find(user);
  return it == usage_.end() ? UserUsage{} : it->second;
}

void Vfs::import_snapshot(const trace::Snapshot& snapshot) {
  for (const auto& e : snapshot.entries()) {
    FileMeta meta;
    meta.owner = e.owner;
    meta.stripe_count = e.stripe_count;
    meta.size_bytes = e.size_bytes;
    meta.atime = e.atime;
    meta.ctime = e.atime;
    create(e.path, meta);
  }
}

trace::Snapshot Vfs::export_snapshot() const {
  trace::Snapshot snap;
  snap.reserve(file_count());
  trie_.for_each([&](const std::string& path, const FileMeta& meta) {
    trace::SnapshotEntry e;
    e.path = path;
    e.owner = meta.owner;
    e.stripe_count = meta.stripe_count;
    e.size_bytes = meta.size_bytes;
    e.atime = meta.atime;
    snap.add(std::move(e));
  });
  return snap;
}

void Vfs::clear() {
  trie_.clear();
  purge_index_.clear();
  total_bytes_ = 0;
  capacity_bytes_ = 0;
  usage_.clear();
}

void Vfs::account_add(const FileMeta& meta) {
  total_bytes_ += meta.size_bytes;
  auto& u = usage_[meta.owner];
  u.bytes += meta.size_bytes;
  u.files += 1;
}

void Vfs::account_remove(const FileMeta& meta) {
  total_bytes_ -= meta.size_bytes;
  const auto it = usage_.find(meta.owner);
  if (it == usage_.end()) return;
  auto& u = it->second;
  u.bytes -= meta.size_bytes;
  u.files -= 1;
  // Drop empty entries: over a year-long replay, users churn through
  // ownership (purge + recreate, overwrite ownership changes) and a
  // never-shrinking map would grow monotonically.
  if (u.files == 0) usage_.erase(it);
}

}  // namespace adr::fs
