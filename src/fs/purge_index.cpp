#include "fs/purge_index.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"

namespace adr::fs {

namespace {

obs::Counter& adds_total() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("purge_index.adds");
  return c;
}

obs::Counter& touches_total() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("purge_index.touches");
  return c;
}

obs::Counter& updates_total() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("purge_index.updates");
  return c;
}

obs::Counter& removes_total() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("purge_index.removes");
  return c;
}

obs::Gauge& entries_gauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::global().gauge("purge_index.entries");
  return g;
}

}  // namespace

PathId PurgeIndex::intern(std::string_view path) {
  if (!free_ids_.empty()) {
    const PathId id = free_ids_.back();
    free_ids_.pop_back();
    paths_[id].assign(path);  // reuses the recycled slot's capacity
    return id;
  }
  const PathId id = static_cast<PathId>(paths_.size());
  paths_.emplace_back(path);
  return id;
}

void PurgeIndex::add(const FileMeta& meta) {
  assert(meta.path_id != kInvalidPathId);
  by_owner_[meta.owner].insert({meta.atime, meta.path_id, meta.size_bytes});
  ++entry_count_;
  adds_total().add();
  entries_gauge().add(1);
}

void PurgeIndex::touch(const FileMeta& before, util::TimePoint new_atime) {
  auto& set = by_owner_[before.owner];
  set.erase({before.atime, before.path_id, 0});
  set.insert({new_atime, before.path_id, before.size_bytes});
  touches_total().add();
}

void PurgeIndex::update(const FileMeta& before, const FileMeta& after) {
  assert(before.path_id == after.path_id);
  const auto it = by_owner_.find(before.owner);
  assert(it != by_owner_.end());
  it->second.erase({before.atime, before.path_id, 0});
  if (it->second.empty() && before.owner != after.owner) {
    by_owner_.erase(it);
  }
  by_owner_[after.owner].insert({after.atime, after.path_id, after.size_bytes});
  updates_total().add();
}

void PurgeIndex::remove(const FileMeta& meta) {
  const auto it = by_owner_.find(meta.owner);
  assert(it != by_owner_.end());
  it->second.erase({meta.atime, meta.path_id, 0});
  // Drop empty owners so the map tracks the live population (mirrors the
  // Vfs usage_ map's churn behaviour).
  if (it->second.empty()) by_owner_.erase(it);
  --entry_count_;
  // Release the id last: the caller's path argument may alias paths_[id].
  free_ids_.push_back(meta.path_id);
  removes_total().add();
  entries_gauge().add(-1);
}

void PurgeIndex::clear() {
  entries_gauge().add(-static_cast<std::int64_t>(entry_count_));
  paths_.clear();
  free_ids_.clear();
  by_owner_.clear();
  entry_count_ = 0;
}

const PurgeIndex::EntrySet* PurgeIndex::entries(trace::UserId owner) const {
  const auto it = by_owner_.find(owner);
  return it == by_owner_.end() ? nullptr : &it->second;
}

void PurgeIndex::collect_expired(trace::UserId owner, util::TimePoint cutoff,
                                 std::vector<Entry>& out) const {
  const EntrySet* set = entries(owner);
  if (!set) return;
  for (const Entry& e : *set) {
    if (e.atime >= cutoff) break;  // set is atime-ascending
    out.push_back(e);
  }
}

std::vector<PurgeIndex::OwnedEntry> PurgeIndex::collect_expired_all(
    util::TimePoint cutoff) const {
  std::vector<OwnedEntry> out;
  for (const auto& [owner, set] : by_owner_) {
    for (const Entry& e : set) {
      if (e.atime >= cutoff) break;
      out.push_back({owner, e});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const OwnedEntry& a, const OwnedEntry& b) {
              return EntryOrder{}(a.entry, b.entry);
            });
  return out;
}

bool PurgeIndex::contains(const FileMeta& meta) const {
  if (meta.path_id == kInvalidPathId || meta.path_id >= paths_.size()) {
    return false;
  }
  const EntrySet* set = entries(meta.owner);
  if (!set) return false;
  const auto it = set->find({meta.atime, meta.path_id, 0});
  return it != set->end() && it->size_bytes == meta.size_bytes;
}

std::size_t PurgeIndex::memory_bytes() const {
  std::size_t bytes = paths_.capacity() * sizeof(std::string) +
                      free_ids_.capacity() * sizeof(PathId);
  for (const auto& p : paths_) bytes += p.capacity();
  // std::set nodes: entry + three pointers + color, per libstdc++ layout.
  bytes += entry_count_ * (sizeof(Entry) + 4 * sizeof(void*));
  bytes += by_owner_.size() * (sizeof(trace::UserId) + sizeof(EntrySet) +
                               2 * sizeof(void*));
  return bytes;
}

}  // namespace adr::fs
