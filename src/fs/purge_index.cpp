#include "fs/purge_index.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "obs/metrics.hpp"

namespace adr::fs {

namespace {

obs::Counter& adds_total() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("purge_index.adds");
  return c;
}

obs::Counter& touches_total() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("purge_index.touches");
  return c;
}

obs::Counter& updates_total() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("purge_index.updates");
  return c;
}

obs::Counter& removes_total() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("purge_index.removes");
  return c;
}

obs::Counter& compactions_total() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("purge_index.compactions");
  return c;
}

obs::Gauge& entries_gauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::global().gauge("purge_index.entries");
  return g;
}

bool same_key(const PurgeIndex::Entry& a, const PurgeIndex::Entry& b) {
  return a.atime == b.atime && a.id == b.id;
}

/// Iterator to the entry with `key`'s (atime, id), or end().
std::vector<PurgeIndex::Entry>::iterator find_key(
    std::vector<PurgeIndex::Entry>& v, const PurgeIndex::Entry& key) {
  const auto it =
      std::lower_bound(v.begin(), v.end(), key, PurgeIndex::EntryOrder{});
  return it != v.end() && same_key(*it, key) ? it : v.end();
}

std::vector<PurgeIndex::Entry>::const_iterator find_key(
    const std::vector<PurgeIndex::Entry>& v, const PurgeIndex::Entry& key) {
  const auto it =
      std::lower_bound(v.begin(), v.end(), key, PurgeIndex::EntryOrder{});
  return it != v.end() && same_key(*it, key) ? it : v.end();
}

void sorted_insert(std::vector<PurgeIndex::Entry>& v,
                   const PurgeIndex::Entry& e) {
  v.insert(std::upper_bound(v.begin(), v.end(), e, PurgeIndex::EntryOrder{}),
           e);
}

}  // namespace

PathId PurgeIndex::intern(std::string_view path) {
  if (!free_ids_.empty()) {
    const PathId id = free_ids_.back();
    free_ids_.pop_back();
    paths_[id].assign(path);  // reuses the recycled slot's capacity
    return id;
  }
  const PathId id = static_cast<PathId>(paths_.size());
  paths_.emplace_back(path);
  return id;
}

std::size_t PurgeIndex::pending_cap(const OwnerList& list) {
  // 1/8 of the base amortizes compaction to O(1 + log B) per mutation while
  // keeping the merged-query overhead (two extra sorted runs) small; the
  // floor of 32 stops tiny owners from compacting on every other insert.
  return std::max<std::size_t>(32, list.base.size() / 8);
}

void PurgeIndex::compact(OwnerList& list) {
  compactions_total().add();
  std::vector<Entry> next;
  next.reserve(list.live());
  // base − graves, then merge the pending inserts; graves only name base
  // entries, so one synchronized sweep applies them exactly.
  auto g = list.graves.cbegin();
  std::vector<Entry> survivors;
  survivors.reserve(list.base.size() - list.graves.size());
  for (const Entry& e : list.base) {
    if (g != list.graves.cend() && same_key(*g, e)) {
      ++g;
      continue;
    }
    survivors.push_back(e);
  }
  assert(g == list.graves.cend());
  std::merge(survivors.begin(), survivors.end(), list.inserts.begin(),
             list.inserts.end(), std::back_inserter(next), EntryOrder{});
  list.base = std::move(next);
  list.inserts.clear();
  list.inserts.shrink_to_fit();
  list.graves.clear();
  list.graves.shrink_to_fit();
}

PurgeIndex::OwnerList& PurgeIndex::owner_list(trace::UserId owner) {
  assert(owner != trace::kInvalidUser);
  if (static_cast<std::size_t>(owner) >= by_owner_.size()) {
    by_owner_.resize(static_cast<std::size_t>(owner) + 1);
  }
  return by_owner_[owner];
}

const PurgeIndex::OwnerList* PurgeIndex::find_owner(
    trace::UserId owner) const {
  if (owner == trace::kInvalidUser ||
      static_cast<std::size_t>(owner) >= by_owner_.size()) {
    return nullptr;
  }
  return &by_owner_[owner];
}

bool PurgeIndex::erase_key(OwnerList& list, const Entry& key) {
  // A pending insert dies in place; a base entry gets a grave.
  const auto it = find_key(list.inserts, key);
  if (it != list.inserts.end()) {
    list.inserts.erase(it);
    return true;
  }
  if (find_key(list.base, key) == list.base.end()) return false;
  sorted_insert(list.graves, key);
  if (list.graves.size() >= pending_cap(list)) compact(list);
  return true;
}

void PurgeIndex::add(const FileMeta& meta) {
  assert(meta.path_id != kInvalidPathId);
  OwnerList& list = owner_list(meta.owner);
  const bool was_empty = list.live() == 0;
  const Entry e{meta.atime, meta.path_id, meta.size_bytes};
  // A recycled id re-added at the atime of a pending grave would collide
  // with the dead base entry; fold the graves in first (rare).
  if (!list.graves.empty() &&
      find_key(list.graves, e) != list.graves.end()) {
    compact(list);
  }
  sorted_insert(list.inserts, e);
  if (list.inserts.size() >= pending_cap(list)) compact(list);
  if (was_empty) ++owner_count_;
  ++entry_count_;
  adds_total().add();
  entries_gauge().add(1);
}

void PurgeIndex::touch(const FileMeta& before, util::TimePoint new_atime) {
  OwnerList& list = owner_list(before.owner);
  const bool erased =
      erase_key(list, Entry{before.atime, before.path_id, 0});
  assert(erased);
  (void)erased;
  const Entry e{new_atime, before.path_id, before.size_bytes};
  if (!list.graves.empty() &&
      find_key(list.graves, e) != list.graves.end()) {
    compact(list);
  }
  sorted_insert(list.inserts, e);
  if (list.inserts.size() >= pending_cap(list)) compact(list);
  touches_total().add();
}

void PurgeIndex::update(const FileMeta& before, const FileMeta& after) {
  assert(before.path_id == after.path_id);
  OwnerList& old_list = owner_list(before.owner);
  const bool erased =
      erase_key(old_list, Entry{before.atime, before.path_id, 0});
  assert(erased);
  (void)erased;
  if (old_list.live() == 0) {
    --owner_count_;
    old_list = OwnerList{};  // release churned buffers with the last entry
  }
  OwnerList& new_list = owner_list(after.owner);
  const bool was_empty = new_list.live() == 0;
  const Entry e{after.atime, after.path_id, after.size_bytes};
  if (!new_list.graves.empty() &&
      find_key(new_list.graves, e) != new_list.graves.end()) {
    compact(new_list);
  }
  sorted_insert(new_list.inserts, e);
  if (new_list.inserts.size() >= pending_cap(new_list)) compact(new_list);
  if (was_empty) ++owner_count_;
  updates_total().add();
}

void PurgeIndex::remove(const FileMeta& meta) {
  OwnerList& list = owner_list(meta.owner);
  const bool erased = erase_key(list, Entry{meta.atime, meta.path_id, 0});
  assert(erased);
  (void)erased;
  if (list.live() == 0) {
    // Drop the buffers so the dense owner table tracks the live population's
    // footprint (mirrors the Vfs usage churn behaviour).
    --owner_count_;
    list = OwnerList{};
  }
  --entry_count_;
  // Release the id last: the caller's path argument may alias paths_[id].
  free_ids_.push_back(meta.path_id);
  removes_total().add();
  entries_gauge().add(-1);
}

void PurgeIndex::clear() {
  entries_gauge().add(-static_cast<std::int64_t>(entry_count_));
  paths_.clear();
  free_ids_.clear();
  by_owner_.clear();
  entry_count_ = 0;
  owner_count_ = 0;
}

bool PurgeIndex::has_entries(trace::UserId owner) const {
  const OwnerList* list = find_owner(owner);
  return list != nullptr && list->live() > 0;
}

std::vector<PurgeIndex::Entry> PurgeIndex::entries(
    trace::UserId owner) const {
  std::vector<Entry> out;
  const OwnerList* list = find_owner(owner);
  if (list == nullptr || list->live() == 0) return out;
  out.reserve(list->live());
  collect_expired(owner, std::numeric_limits<util::TimePoint>::max(), out);
  return out;
}

void PurgeIndex::collect_expired(trace::UserId owner, util::TimePoint cutoff,
                                 std::vector<Entry>& out) const {
  const OwnerList* list = find_owner(owner);
  if (list == nullptr) return;
  // Merged ascending sweep over base ∪ inserts − graves; all three runs are
  // sorted, and graves only name base entries.
  auto b = list->base.cbegin();
  const auto b_end = list->base.cend();
  auto i = list->inserts.cbegin();
  const auto i_end = list->inserts.cend();
  auto g = list->graves.cbegin();
  const auto g_end = list->graves.cend();
  const EntryOrder less;
  while (b != b_end || i != i_end) {
    const bool take_base = i == i_end || (b != b_end && less(*b, *i));
    const Entry& e = take_base ? *b : *i;
    if (e.atime >= cutoff) break;  // both runs are atime-ascending
    if (take_base) {
      ++b;
      if (g != g_end && same_key(*g, e)) {
        ++g;
        continue;  // dead base entry
      }
    } else {
      ++i;
    }
    out.push_back(e);
  }
}

std::vector<PurgeIndex::OwnedEntry> PurgeIndex::collect_expired_all(
    util::TimePoint cutoff) const {
  std::vector<OwnedEntry> out;
  std::vector<Entry> mine;
  for (std::size_t owner = 0; owner < by_owner_.size(); ++owner) {
    if (by_owner_[owner].live() == 0) continue;
    mine.clear();
    collect_expired(static_cast<trace::UserId>(owner), cutoff, mine);
    for (const Entry& e : mine) {
      out.push_back({static_cast<trace::UserId>(owner), e});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const OwnedEntry& a, const OwnedEntry& b) {
              return EntryOrder{}(a.entry, b.entry);
            });
  return out;
}

bool PurgeIndex::contains(const FileMeta& meta) const {
  if (meta.path_id == kInvalidPathId || meta.path_id >= paths_.size()) {
    return false;
  }
  const OwnerList* list = find_owner(meta.owner);
  if (list == nullptr) return false;
  const Entry key{meta.atime, meta.path_id, 0};
  const auto it = find_key(list->inserts, key);
  if (it != list->inserts.end()) return it->size_bytes == meta.size_bytes;
  const auto bit = find_key(list->base, key);
  if (bit == list->base.end()) return false;
  if (find_key(list->graves, key) != list->graves.end()) return false;
  return bit->size_bytes == meta.size_bytes;
}

std::size_t PurgeIndex::memory_bytes() const {
  std::size_t bytes = paths_.capacity() * sizeof(std::string) +
                      free_ids_.capacity() * sizeof(PathId) +
                      by_owner_.capacity() * sizeof(OwnerList);
  for (const auto& p : paths_) bytes += p.capacity();
  for (const OwnerList& list : by_owner_) {
    bytes += (list.base.capacity() + list.inserts.capacity() +
              list.graves.capacity()) *
             sizeof(Entry);
  }
  return bytes;
}

}  // namespace adr::fs
