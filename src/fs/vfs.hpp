#pragma once
// Virtual file system: the emulation substrate standing in for Spider II.
//
// A Vfs is a path-trie index plus full accounting: total bytes, per-user
// bytes/files, and a nominal capacity (purge targets are expressed as a
// fraction of it). The emulator replays application logs against it; the
// retention policies scan and purge it.
//
// Scale tier (DESIGN.md §15): per-user usage lives in a dense vector indexed
// by the (already dense) 32-bit UserId, and an optional byte-budgeted
// *residency layer* keeps the heavyweight trie bounded at 10⁷–10⁸ files.
// When the estimated resident trie footprint exceeds the budget, the coldest
// users' subtrees are evicted: their trie nodes are dropped and each file
// shrinks to a ~24 B spill record (the purge index keeps atime/size/owner and
// the interned path, so victim selection never faults). An access, create, or
// remove naming an evicted owner faults that user's subtree back from the
// index + spill records. Walk-mode scans (for_each*) see only resident files
// — policies must run in indexed scan mode when a budget is set.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "fs/path_trie.hpp"
#include "fs/purge_index.hpp"
#include "trace/snapshot.hpp"

namespace adr::fs {

/// Per-user usage accounting.
struct UserUsage {
  std::uint64_t bytes = 0;
  std::uint64_t files = 0;
};

/// Map-shaped read-only view over the dense per-user usage table. Iteration
/// yields (UserId, UserUsage) for users currently holding files — the same
/// contract as the unordered_map this replaced — while the storage underneath
/// is a flat vector with O(1) lookup and zero hashing.
class UserUsageView {
 public:
  UserUsageView(const std::vector<UserUsage>& table, std::size_t non_empty)
      : table_(&table), non_empty_(non_empty) {}

  class const_iterator {
   public:
    const_iterator(const std::vector<UserUsage>* table, std::size_t pos)
        : table_(table), pos_(pos) {
      skip_empty();
    }
    std::pair<trace::UserId, UserUsage> operator*() const {
      return {static_cast<trace::UserId>(pos_), (*table_)[pos_]};
    }
    const_iterator& operator++() {
      ++pos_;
      skip_empty();
      return *this;
    }
    bool operator==(const const_iterator& o) const { return pos_ == o.pos_; }
    bool operator!=(const const_iterator& o) const { return pos_ != o.pos_; }

   private:
    void skip_empty() {
      while (pos_ < table_->size() && (*table_)[pos_].files == 0) ++pos_;
    }
    const std::vector<UserUsage>* table_;
    std::size_t pos_;
  };

  const_iterator begin() const { return {table_, 0}; }
  const_iterator end() const { return {table_, table_->size()}; }

  /// Users currently holding at least one file (O(1), maintained by the Vfs).
  std::size_t size() const { return non_empty_; }
  bool empty() const { return non_empty_ == 0; }

  /// 1 when `user` holds files, else 0 (unordered_map::count shape).
  std::size_t count(trace::UserId user) const {
    return user != trace::kInvalidUser &&
                   static_cast<std::size_t>(user) < table_->size() &&
                   (*table_)[user].files != 0
               ? 1
               : 0;
  }

 private:
  const std::vector<UserUsage>* table_;
  std::size_t non_empty_;
};

class Vfs {
 public:
  Vfs() = default;

  /// Create (or overwrite) a file. Accounting is updated for both the old
  /// and new metadata; overwriting routes the *displaced* version through
  /// the removal sink so the archive tier never silently loses it. Returns
  /// true if the file is new. Under a memory budget, the creating owner is
  /// faulted resident first (overwrites of one's own evicted files re-key
  /// correctly); overwriting *another* user's evicted file is outside the
  /// residency contract — see DESIGN.md §15.
  bool create(std::string_view path, const FileMeta& meta);

  /// Record an access at time `t`: bumps atime monotonically. Returns false
  /// (a *file miss*) if the path does not exist. `owner_hint`, when valid,
  /// lets the residency layer fault an evicted owner back before declaring
  /// a miss — call sites replaying app logs always know the acting user.
  bool access(std::string_view path, util::TimePoint t,
              trace::UserId owner_hint = trace::kInvalidUser);

  /// Remove a file; returns false if absent. The removal sink (if any)
  /// observes the file before it disappears. `owner_hint` as in access():
  /// purge policies know each victim's owner, so removing an evicted cold
  /// user's files faults the subtree back once and then drains it.
  bool remove(std::string_view path,
              trace::UserId owner_hint = trace::kInvalidUser);

  /// Observer invoked for every file that leaves the tier — removals and
  /// the displaced old version on an overwriting create(). This is how the
  /// emulator routes purged/displaced files into the archive tier.
  using RemovalSink = std::function<void(const std::string&, const FileMeta&)>;
  void set_removal_sink(RemovalSink sink) { removal_sink_ = std::move(sink); }

  /// Resident-view lookups: an evicted file stats as absent (const methods
  /// cannot fault). Use access/remove with an owner hint on hot paths.
  const FileMeta* stat(std::string_view path) const { return trie_.find(path); }
  bool exists(std::string_view path) const { return trie_.contains(path); }

  std::uint64_t total_bytes() const { return total_bytes_; }
  /// All files, resident or spilled.
  std::size_t file_count() const { return trie_.file_count() + spilled_files_; }

  /// Usage of one user (zeros if unknown).
  UserUsage usage(trace::UserId user) const;
  UserUsageView usage_by_user() const { return {usage_, users_with_files_}; }

  /// Nominal capacity. Defaults to the high-water total after the last
  /// import/create burst unless set explicitly.
  void set_capacity_bytes(std::uint64_t capacity) { capacity_bytes_ = capacity; }
  std::uint64_t capacity_bytes() const {
    return capacity_bytes_ ? capacity_bytes_ : total_bytes_;
  }

  // -- residency / memory budget --------------------------------------------

  /// Cap the estimated resident trie footprint; 0 (default) disables
  /// eviction. When a mutation pushes the estimate over the cap, the
  /// coldest users are evicted down to a low watermark (7/8 of the budget).
  void set_memory_budget_bytes(std::uint64_t budget);
  std::uint64_t memory_budget_bytes() const { return budget_bytes_; }

  /// True when `user`'s subtree is materialized in the trie (users with no
  /// files are trivially resident).
  bool user_resident(trace::UserId user) const;
  std::size_t evicted_user_count() const { return evicted_users_; }
  std::size_t spilled_file_count() const { return spilled_files_; }
  /// Estimated bytes of trie structure for resident files (path bytes plus
  /// a per-file node constant — see DESIGN.md §15 for the budget model).
  std::uint64_t resident_bytes_estimate() const { return resident_cost_; }
  /// Bytes held in spill records for evicted files.
  std::uint64_t spilled_bytes() const { return spilled_bytes_; }

  /// Force one user out / back in (tests and the scale bench's cold-start
  /// probes; normal operation goes through the budget).
  void evict_user(trace::UserId user);
  void fault_user(trace::UserId user);

  /// Visit all files under a path prefix (policy scan entry point).
  /// Resident view only: evicted files are not walked (indexed scan mode is
  /// the contract under a memory budget).
  void for_each_under(
      std::string_view prefix,
      const std::function<void(const std::string&, const FileMeta&)>& fn) const {
    trie_.for_each_under(prefix, fn);
  }
  void for_each(
      const std::function<void(const std::string&, const FileMeta&)>& fn) const {
    trie_.for_each(fn);
  }

  /// Underlying index (read-only), exposed for memory probes.
  const PathTrie& index() const { return trie_; }

  /// Atime-ordered purge index, maintained incrementally by every
  /// create/access/remove — the policies' fast scan path. Entries stay
  /// indexed while their owner is evicted (victim selection never faults).
  const PurgeIndex& purge_index() const { return purge_index_; }

  /// Opt-in consistency check: cross-verify the purge index against a full
  /// trie walk plus the spill records of evicted users (every file indexed
  /// with matching owner/atime/size/path, and nothing extra). Returns true
  /// when consistent; otherwise describes the first mismatch in *error (if
  /// non-null). O(files) — meant for tests, audits
  /// (EmulatorConfig::audit_purge_index), and `purge --check-index`.
  bool verify_purge_index(std::string* error = nullptr) const;

  /// Seed from / export to a metadata snapshot. Export covers evicted files
  /// too (reconstructed from the index + spill records).
  void import_snapshot(const trace::Snapshot& snapshot);
  trace::Snapshot export_snapshot() const;

  void clear();

 private:
  /// Compact per-file record for an evicted file: everything the purge
  /// index does *not* already hold. Stored in the owner's entries() order.
  struct SpillRecord {
    PathId id = kInvalidPathId;
    std::int32_t stripe_count = 1;
    util::TimePoint ctime = 0;
    std::uint32_t access_count = 0;
  };

  /// Residency bookkeeping, dense by user id (parallel to usage_).
  struct UserResidency {
    std::uint64_t resident_cost = 0;  // estimate; 0 while evicted
    std::uint64_t last_touch = 0;     // monotonic op tick (cold = small)
    bool evicted = false;
    std::vector<SpillRecord> spill;   // only while evicted
  };

  void account_add(const FileMeta& meta);
  void account_remove(const FileMeta& meta);
  UserResidency& residency(trace::UserId user);
  void touch_user(trace::UserId user);
  /// Fault `owner_hint` if it names an evicted user; true when a fault ran.
  bool maybe_fault(trace::UserId owner_hint);
  /// Evict coldest users until the estimate is back under the watermark.
  void enforce_budget();

  PathTrie trie_;
  PurgeIndex purge_index_;
  RemovalSink removal_sink_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t capacity_bytes_ = 0;
  std::vector<UserUsage> usage_;  // dense by user id
  std::size_t users_with_files_ = 0;
  std::vector<UserResidency> residency_;  // dense by user id
  std::uint64_t budget_bytes_ = 0;
  std::uint64_t resident_cost_ = 0;
  std::uint64_t spilled_bytes_ = 0;
  std::size_t spilled_files_ = 0;
  std::size_t evicted_users_ = 0;
  std::uint64_t touch_tick_ = 0;
};

}  // namespace adr::fs
