#pragma once
// Virtual file system: the emulation substrate standing in for Spider II.
//
// A Vfs is a path-trie index plus full accounting: total bytes, per-user
// bytes/files, and a nominal capacity (purge targets are expressed as a
// fraction of it). The emulator replays application logs against it; the
// retention policies scan and purge it.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "fs/path_trie.hpp"
#include "fs/purge_index.hpp"
#include "trace/snapshot.hpp"

namespace adr::fs {

/// Per-user usage accounting.
struct UserUsage {
  std::uint64_t bytes = 0;
  std::uint64_t files = 0;
};

class Vfs {
 public:
  Vfs() = default;

  /// Create (or overwrite) a file. Accounting is updated for both the old
  /// and new metadata; overwriting routes the *displaced* version through
  /// the removal sink so the archive tier never silently loses it. Returns
  /// true if the file is new.
  bool create(std::string_view path, const FileMeta& meta);

  /// Record an access at time `t`: bumps atime monotonically. Returns false
  /// (a *file miss*) if the path does not exist.
  bool access(std::string_view path, util::TimePoint t);

  /// Remove a file; returns false if absent. The removal sink (if any)
  /// observes the file before it disappears.
  bool remove(std::string_view path);

  /// Observer invoked for every file that leaves the tier — removals and
  /// the displaced old version on an overwriting create(). This is how the
  /// emulator routes purged/displaced files into the archive tier.
  using RemovalSink = std::function<void(const std::string&, const FileMeta&)>;
  void set_removal_sink(RemovalSink sink) { removal_sink_ = std::move(sink); }

  const FileMeta* stat(std::string_view path) const { return trie_.find(path); }
  bool exists(std::string_view path) const { return trie_.contains(path); }

  std::uint64_t total_bytes() const { return total_bytes_; }
  std::size_t file_count() const { return trie_.file_count(); }

  /// Usage of one user (zeros if unknown).
  UserUsage usage(trace::UserId user) const;
  const std::unordered_map<trace::UserId, UserUsage>& usage_by_user() const {
    return usage_;
  }

  /// Nominal capacity. Defaults to the high-water total after the last
  /// import/create burst unless set explicitly.
  void set_capacity_bytes(std::uint64_t capacity) { capacity_bytes_ = capacity; }
  std::uint64_t capacity_bytes() const {
    return capacity_bytes_ ? capacity_bytes_ : total_bytes_;
  }

  /// Visit all files under a path prefix (policy scan entry point).
  void for_each_under(
      std::string_view prefix,
      const std::function<void(const std::string&, const FileMeta&)>& fn) const {
    trie_.for_each_under(prefix, fn);
  }
  void for_each(
      const std::function<void(const std::string&, const FileMeta&)>& fn) const {
    trie_.for_each(fn);
  }

  /// Underlying index (read-only), exposed for memory probes.
  const PathTrie& index() const { return trie_; }

  /// Atime-ordered purge index, maintained incrementally by every
  /// create/access/remove — the policies' fast scan path.
  const PurgeIndex& purge_index() const { return purge_index_; }

  /// Opt-in consistency check: cross-verify the purge index against a full
  /// trie walk (every file indexed with matching owner/atime/size/path, and
  /// nothing extra). Returns true when consistent; otherwise describes the
  /// first mismatch in *error (if non-null). O(files) — meant for tests,
  /// audits (EmulatorConfig::audit_purge_index), and `purge --check-index`.
  bool verify_purge_index(std::string* error = nullptr) const;

  /// Seed from / export to a metadata snapshot.
  void import_snapshot(const trace::Snapshot& snapshot);
  trace::Snapshot export_snapshot() const;

  void clear();

 private:
  void account_add(const FileMeta& meta);
  void account_remove(const FileMeta& meta);

  PathTrie trie_;
  PurgeIndex purge_index_;
  RemovalSink removal_sink_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t capacity_bytes_ = 0;
  std::unordered_map<trace::UserId, UserUsage> usage_;
};

}  // namespace adr::fs
