#pragma once
// Per-file metadata tracked by the virtual file system. This is the complete
// set of attributes the retention policies read: owner (scan grouping),
// size (purge-target accounting), atime (lifetime checks), stripe count
// (size synthesis provenance).

#include <cstdint>

#include "trace/types.hpp"
#include "util/time.hpp"

namespace adr::fs {

/// Dense id of an interned path string (see fs::PurgeIndex). Ids are
/// assigned by the Vfs on first create and recycled after removal, so a
/// policy can carry victims around as 4-byte ids instead of path copies.
using PathId = std::uint32_t;
inline constexpr PathId kInvalidPathId = static_cast<PathId>(-1);

struct FileMeta {
  trace::UserId owner = trace::kInvalidUser;
  std::int32_t stripe_count = 1;
  std::uint64_t size_bytes = 0;
  util::TimePoint atime = 0;  ///< last access
  util::TimePoint ctime = 0;  ///< creation
  /// Accesses recorded since creation — value-based retention (§2's second
  /// strategy family) scores files by access frequency among other
  /// attributes.
  std::uint32_t access_count = 0;
  /// Interned-path id, owned and assigned by the Vfs (caller-supplied
  /// values are ignored on create). kInvalidPathId outside a Vfs.
  PathId path_id = kInvalidPathId;
};

}  // namespace adr::fs
