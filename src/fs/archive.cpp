#include "fs/archive.hpp"

namespace adr::fs {

ArchiveTier::ArchiveTier(ArchiveConfig config) : config_(config) {}

void ArchiveTier::archive(const std::string& path, const FileMeta& meta) {
  const auto it = files_.find(path);
  if (it == files_.end()) {
    files_.emplace(path, meta);
    stats_.archived_bytes += meta.size_bytes;
    ++stats_.archived_files;
    return;
  }
  // Replaced: keep the latest version's bytes in the accounting.
  stats_.archived_bytes -= it->second.size_bytes;
  stats_.archived_bytes += meta.size_bytes;
  it->second = meta;
}

const FileMeta* ArchiveTier::restore(std::string_view path) {
  const auto it = files_.find(std::string(path));
  if (it == files_.end()) {
    ++stats_.restore_misses;
    return nullptr;
  }
  stats_.restored_bytes += it->second.size_bytes;
  ++stats_.restore_count;
  stats_.restore_hours +=
      (config_.restore_latency_s +
       static_cast<double>(it->second.size_bytes) /
           config_.restore_bandwidth_bytes_per_s) /
      3600.0;
  return &it->second;
}

const FileMeta* ArchiveTier::peek(std::string_view path) const {
  const auto it = files_.find(std::string(path));
  return it == files_.end() ? nullptr : &it->second;
}

void ArchiveTier::clear() {
  files_.clear();
  stats_ = ArchiveStats{};
}

}  // namespace adr::fs
