#pragma once
// Lustre striping model.
//
// Spider II metadata snapshots expose a stripe count per file but no size;
// the paper synthesizes sizes "according to the best striping practice of
// the Spider file system" (OLCF Best Practices: stripe wider as files grow).
// We encode that practice as size bands per stripe-count tier and draw a
// log-uniform size within the band — deterministic given the RNG stream.

#include <cstdint>

#include "util/rng.hpp"

namespace adr::fs {

/// Inclusive size band associated with a stripe count tier.
struct StripeBand {
  std::int32_t max_stripes;   ///< tier applies to counts <= this
  std::uint64_t min_bytes;
  std::uint64_t max_bytes;
};

/// The OLCF best-practice tiers:
///   1 stripe   : up to 1 GiB
///   2-4        : 1 GiB .. 10 GiB
///   5-16       : 10 GiB .. 100 GiB
///   17-64      : 100 GiB .. 1 TiB
///   65+        : 1 TiB .. 10 TiB
const StripeBand* stripe_bands(std::size_t* count);

/// Band for a given stripe count.
StripeBand band_for_stripes(std::int32_t stripes);

/// Synthesize a file size for a stripe count: log-uniform within the band.
std::uint64_t synthesize_size(std::int32_t stripes, util::Rng& rng);

/// Sample a stripe count with the empirical skew of HPC scratch (the vast
/// majority of files are single-stripe; wide stripes are rare).
std::int32_t sample_stripe_count(util::Rng& rng);

/// The best-practice stripe count an administrator would assign to a file of
/// the given size (inverse direction; used by tests as a consistency check).
std::int32_t recommended_stripes(std::uint64_t size_bytes);

}  // namespace adr::fs
