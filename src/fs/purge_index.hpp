#pragma once
// Incrementally-maintained, atime-ordered purge index over the Vfs.
//
// The retention policies' hot path is "which of this user's files have
// atime < now − ε?". Answering that with a namespace walk costs a full trie
// traversal per trigger (and ActiveDR's retrospective passes re-walk the
// same directories up to five more times). Production policy engines on
// billion-entry file systems (Robinhood and kin) replace the walk with a
// maintained index; this is that index for the emulation.
//
// Layout (the million-user scale tier, DESIGN.md §15): per owner, entries
// live in a *sorted flat vector* — ~sizeof(Entry) bytes per file, contiguous
// for the scan — instead of a per-node std::set (~80 B/entry of node and
// allocator overhead at 10⁸ entries). Mutations are deferred-merge:
//   * inserts go into a small sorted side buffer,
//   * erases of base entries go into a small sorted grave buffer,
// and either buffer reaching its cap (a fraction of the base) triggers a
// one-pass compaction (set_difference of graves, merge of inserts). Every
// query resolves base ∪ inserts − graves on the fly, so results are exact
// at all times; amortized maintenance stays O(log n + B) per
// create/access/remove where B is the bounded buffer size. Owners are dense
// user ids, so the owner table is a flat vector too, not a hash map.
//
// Paths are interned once at create time — scans and victim bookkeeping
// move 4-byte PathIds around, never per-victim std::string copies; freed
// ids (and their string storage) are recycled on later creates.
//
// Concurrency matches the trie: const queries (entries / collect_expired /
// contains / path) are safe from many threads while no thread mutates —
// queries never compact, they merge on the fly. Mutation is
// single-threaded. This is exactly the scan-then-apply shape of the
// policies.
//
// Maintenance cost is observable: "purge_index.adds/touches/updates/
// removes/compactions" counters and the "purge_index.entries" gauge report
// into the global metrics registry, so --metrics-out shows index upkeep
// next to the scan time it saves.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fs/file_meta.hpp"
#include "trace/types.hpp"
#include "util/time.hpp"

namespace adr::fs {

class PurgeIndex {
 public:
  /// One indexed file. Ordered by (atime, id): atime gives the purge
  /// policy's oldest-first order, the id breaks ties deterministically.
  struct Entry {
    util::TimePoint atime = 0;
    PathId id = kInvalidPathId;
    std::uint64_t size_bytes = 0;
  };
  struct EntryOrder {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.atime != b.atime ? a.atime < b.atime : a.id < b.id;
    }
  };

  /// An entry paired with its owner (cross-user queries).
  struct OwnedEntry {
    trace::UserId owner = trace::kInvalidUser;
    Entry entry;
  };

  // -- maintenance (called by the Vfs; see vfs.cpp) -------------------------

  /// Intern `path`, returning a fresh or recycled id. The id stays valid
  /// (and `path(id)` stable) until released by `remove`.
  PathId intern(std::string_view path);

  /// Index a newly created file (meta.path_id must be interned).
  void add(const FileMeta& meta);

  /// Re-key `before`'s entry after an atime bump to `new_atime`.
  void touch(const FileMeta& before, util::TimePoint new_atime);

  /// Re-key after an overwriting create: owner, atime, and size may all
  /// change; the path id is preserved.
  void update(const FileMeta& before, const FileMeta& after);

  /// Drop a removed file's entry and release its path id for reuse. The
  /// interned string's storage is left in place until the id is recycled,
  /// so string_views into `path(id)` stay valid for the rest of the
  /// enclosing Vfs call.
  void remove(const FileMeta& meta);

  void clear();

  // -- queries --------------------------------------------------------------

  /// Interned path for a live id (also valid for a just-released id until
  /// the next intern).
  const std::string& path(PathId id) const { return paths_[id]; }

  /// Indexed file count (equals the trie's file count when consistent).
  std::size_t entry_count() const { return entry_count_; }

  /// Owners currently holding at least one file.
  std::size_t owner_count() const { return owner_count_; }

  /// True when `owner` holds at least one live entry.
  bool has_entries(trace::UserId owner) const;

  /// All files of `owner` in ascending (atime, id) order, materialized from
  /// the deferred-merge layout (empty when the owner holds nothing).
  std::vector<Entry> entries(trace::UserId owner) const;

  /// Append `owner`'s files with atime < cutoff (strict) to `out`, in
  /// ascending (atime, id) order — the Eq. 7 victim condition
  /// `now − atime > ε` with cutoff = now − ε. Allocation-free merged scan
  /// over base/inserts/graves; stops at the cutoff without visiting
  /// retained entries.
  void collect_expired(trace::UserId owner, util::TimePoint cutoff,
                       std::vector<Entry>& out) const;

  /// Expired files across every owner, globally sorted ascending
  /// (atime, id) — oldest first (the FLT fast path).
  std::vector<OwnedEntry> collect_expired_all(util::TimePoint cutoff) const;

  /// True if exactly this entry (owner, atime, id, size) is indexed —
  /// the consistency-check primitive (see Vfs::verify_purge_index).
  bool contains(const FileMeta& meta) const;

  /// Approximate heap footprint (flat vectors + interned strings) for the
  /// Fig. 12a / scale-tier memory probes.
  std::size_t memory_bytes() const;

 private:
  /// Per-owner deferred-merge entry storage. `base` is the sorted bulk;
  /// `inserts` and `graves` are small sorted side buffers. Graves only ever
  /// name base entries (erasing a pending insert removes it directly), so
  /// the live set is base − graves + inserts and live counts are O(1).
  struct OwnerList {
    std::vector<Entry> base;
    std::vector<Entry> inserts;
    std::vector<Entry> graves;

    std::size_t live() const {
      return base.size() + inserts.size() - graves.size();
    }
  };

  OwnerList& owner_list(trace::UserId owner);
  const OwnerList* find_owner(trace::UserId owner) const;
  /// Fold graves and inserts into base (one-pass rebuild).
  static void compact(OwnerList& list);
  /// Buffer cap before a compaction: grows with the base so big owners
  /// amortize, floors at a constant so small owners stay exact-ish.
  static std::size_t pending_cap(const OwnerList& list);
  /// Erase the live entry with `key`'s (atime, id); true when found.
  bool erase_key(OwnerList& list, const Entry& key);

  std::vector<std::string> paths_;  // id -> path; slots recycled via free_ids_
  std::vector<PathId> free_ids_;
  std::vector<OwnerList> by_owner_;  // dense by owner id
  std::size_t entry_count_ = 0;
  std::size_t owner_count_ = 0;
};

}  // namespace adr::fs
