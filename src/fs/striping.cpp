#include "fs/striping.hpp"

#include <cmath>

namespace adr::fs {

namespace {

constexpr std::uint64_t kKiB = 1024ULL;
constexpr std::uint64_t kMiB = kKiB * 1024;
constexpr std::uint64_t kGiB = kMiB * 1024;
constexpr std::uint64_t kTiB = kGiB * 1024;

constexpr StripeBand kBands[] = {
    {1, 4 * kKiB, 1 * kGiB},
    {4, 1 * kGiB, 10 * kGiB},
    {16, 10 * kGiB, 100 * kGiB},
    {64, 100 * kGiB, 1 * kTiB},
    {1024, 1 * kTiB, 10 * kTiB},
};

}  // namespace

const StripeBand* stripe_bands(std::size_t* count) {
  if (count) *count = std::size(kBands);
  return kBands;
}

StripeBand band_for_stripes(std::int32_t stripes) {
  for (const auto& b : kBands) {
    if (stripes <= b.max_stripes) return b;
  }
  return kBands[std::size(kBands) - 1];
}

std::uint64_t synthesize_size(std::int32_t stripes, util::Rng& rng) {
  const StripeBand b = band_for_stripes(stripes);
  const double lo = std::log(static_cast<double>(b.min_bytes));
  const double hi = std::log(static_cast<double>(b.max_bytes));
  const double v = std::exp(rng.uniform(lo, hi));
  return static_cast<std::uint64_t>(v);
}

std::int32_t sample_stripe_count(util::Rng& rng) {
  // Empirical shape: ~85% single stripe, thin power-law tail of wide files.
  const double u = rng.uniform();
  if (u < 0.85) return 1;
  if (u < 0.95) return static_cast<std::int32_t>(rng.uniform_int(2, 4));
  if (u < 0.99) return static_cast<std::int32_t>(rng.uniform_int(5, 16));
  if (u < 0.998) return static_cast<std::int32_t>(rng.uniform_int(17, 64));
  return static_cast<std::int32_t>(rng.uniform_int(65, 512));
}

std::int32_t recommended_stripes(std::uint64_t size_bytes) {
  for (const auto& b : kBands) {
    if (size_bytes <= b.max_bytes) return b.max_stripes;
  }
  return kBands[std::size(kBands) - 1].max_stripes;
}

}  // namespace adr::fs
