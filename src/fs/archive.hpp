#pragma once
// The archival storage tier behind the scratch space (HPSS at OLCF).
//
// The paper's motivation leans on the cost of recovering purged files:
// "re-transmission or re-generation ... can take hours to days ... causing a
// significant amount of network traffic" (§2). This tier makes that cost
// measurable: purged files land here with their metadata; a miss triggers a
// restore whose bytes and modeled transfer time accumulate into the
// emulation result (bench_related_work's cost columns).

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "fs/file_meta.hpp"

namespace adr::fs {

struct ArchiveStats {
  std::uint64_t archived_bytes = 0;
  std::size_t archived_files = 0;   ///< currently held
  std::uint64_t restored_bytes = 0;
  std::size_t restore_count = 0;
  std::size_t restore_misses = 0;   ///< restore requests for unknown paths
  /// Modeled wall time users spent waiting on restores, in hours.
  double restore_hours = 0.0;
};

struct ArchiveConfig {
  /// Effective archive-to-scratch restore bandwidth. Tape-backed HSM
  /// systems deliver far below the PFS peak; 1 GiB/s is generous.
  double restore_bandwidth_bytes_per_s = 1024.0 * 1024 * 1024;
  /// Fixed per-restore latency (staging, tape mount, queueing).
  double restore_latency_s = 600.0;
};

class ArchiveTier {
 public:
  explicit ArchiveTier(ArchiveConfig config = {});

  /// Ingest a purged file (keeps the latest metadata for the path).
  void archive(const std::string& path, const FileMeta& meta);

  /// Restore a file: returns its metadata and accounts the transfer cost.
  /// Returns nullptr (and counts a restore miss) if the path was never
  /// archived — the "sometimes even impossible" recovery of §1. The file
  /// stays archived (restores are copies).
  const FileMeta* restore(std::string_view path);

  /// Metadata lookup without cost accounting.
  const FileMeta* peek(std::string_view path) const;

  const ArchiveStats& stats() const { return stats_; }
  const ArchiveConfig& config() const { return config_; }
  std::size_t size() const { return files_.size(); }

  void clear();

 private:
  ArchiveConfig config_;
  std::unordered_map<std::string, FileMeta> files_;
  ArchiveStats stats_;
};

}  // namespace adr::fs
