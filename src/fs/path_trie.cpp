#include "fs/path_trie.hpp"

#include <algorithm>
#include <cassert>

namespace adr::fs {

std::vector<std::string> split_path(std::string_view path) {
  std::vector<std::string> comps;
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    std::size_t j = i;
    while (j < path.size() && path[j] != '/') ++j;
    if (j > i) comps.emplace_back(path.substr(i, j - i));
    i = j;
  }
  return comps;
}

std::string join_path(const std::vector<std::string>& components) {
  std::string out;
  for (const auto& c : components) {
    out.push_back('/');
    out += c;
  }
  if (out.empty()) out = "/";
  return out;
}

struct PathTrie::Node {
  std::vector<std::string> edge;                 // components from parent
  std::vector<std::unique_ptr<Node>> children;   // sorted by edge.front()
  std::optional<FileMeta> file;

  /// Index of the child whose first edge component is `c`, or npos.
  std::size_t child_index(const std::string& c) const {
    const auto it = std::lower_bound(
        children.begin(), children.end(), c,
        [](const std::unique_ptr<Node>& n, const std::string& key) {
          return n->edge.front() < key;
        });
    if (it != children.end() && (*it)->edge.front() == c)
      return static_cast<std::size_t>(it - children.begin());
    return static_cast<std::size_t>(-1);
  }

  void adopt(std::unique_ptr<Node> child) {
    const auto it = std::lower_bound(
        children.begin(), children.end(), child->edge.front(),
        [](const std::unique_ptr<Node>& n, const std::string& key) {
          return n->edge.front() < key;
        });
    children.insert(it, std::move(child));
  }
};

PathTrie::PathTrie() : root_(std::make_unique<Node>()), node_count_(1) {}
PathTrie::~PathTrie() = default;
PathTrie::PathTrie(PathTrie&&) noexcept = default;
PathTrie& PathTrie::operator=(PathTrie&&) noexcept = default;

bool PathTrie::insert(std::string_view path, const FileMeta& meta) {
  const auto comps = split_path(path);
  return insert_components(root_.get(), comps, 0, meta);
}

bool PathTrie::insert_components(Node* node,
                                 const std::vector<std::string>& comps,
                                 std::size_t i, const FileMeta& meta) {
  for (;;) {
    if (i == comps.size()) {
      const bool is_new = !node->file.has_value();
      node->file = meta;
      if (is_new) ++file_count_;
      return is_new;
    }
    const std::size_t ci = node->child_index(comps[i]);
    if (ci == static_cast<std::size_t>(-1)) {
      auto leaf = std::make_unique<Node>();
      leaf->edge.assign(comps.begin() + static_cast<std::ptrdiff_t>(i),
                        comps.end());
      leaf->file = meta;
      node->adopt(std::move(leaf));
      ++node_count_;
      ++file_count_;
      return true;
    }
    Node* child = node->children[ci].get();
    // Longest common component prefix of child->edge and comps[i..].
    std::size_t k = 0;
    while (k < child->edge.size() && i + k < comps.size() &&
           child->edge[k] == comps[i + k]) {
      ++k;
    }
    assert(k >= 1);
    if (k == child->edge.size()) {
      node = child;
      i += k;
      continue;
    }
    // Split the edge: mid covers the shared prefix, child keeps the tail.
    auto mid = std::make_unique<Node>();
    mid->edge.assign(child->edge.begin(),
                     child->edge.begin() + static_cast<std::ptrdiff_t>(k));
    std::unique_ptr<Node> detached = std::move(node->children[ci]);
    node->children.erase(node->children.begin() +
                         static_cast<std::ptrdiff_t>(ci));
    detached->edge.erase(detached->edge.begin(),
                         detached->edge.begin() + static_cast<std::ptrdiff_t>(k));
    Node* mid_raw = mid.get();
    mid->adopt(std::move(detached));
    node->adopt(std::move(mid));
    ++node_count_;
    node = mid_raw;
    i += k;
  }
}

const FileMeta* PathTrie::find(std::string_view path) const {
  const auto comps = split_path(path);
  const Node* node = root_.get();
  std::size_t i = 0;
  while (i < comps.size()) {
    const std::size_t ci = node->child_index(comps[i]);
    if (ci == static_cast<std::size_t>(-1)) return nullptr;
    const Node* child = node->children[ci].get();
    if (i + child->edge.size() > comps.size()) return nullptr;
    for (std::size_t k = 0; k < child->edge.size(); ++k) {
      if (child->edge[k] != comps[i + k]) return nullptr;
    }
    i += child->edge.size();
    node = child;
  }
  return node->file ? &*node->file : nullptr;
}

FileMeta* PathTrie::find(std::string_view path) {
  return const_cast<FileMeta*>(
      static_cast<const PathTrie*>(this)->find(path));
}

bool PathTrie::erase(std::string_view path) {
  const auto comps = split_path(path);
  // Collect the descent chain so we can prune/merge bottom-up.
  std::vector<std::pair<Node*, std::size_t>> chain;  // (parent, child index)
  Node* node = root_.get();
  std::size_t i = 0;
  while (i < comps.size()) {
    const std::size_t ci = node->child_index(comps[i]);
    if (ci == static_cast<std::size_t>(-1)) return false;
    Node* child = node->children[ci].get();
    if (i + child->edge.size() > comps.size()) return false;
    for (std::size_t k = 0; k < child->edge.size(); ++k) {
      if (child->edge[k] != comps[i + k]) return false;
    }
    chain.emplace_back(node, ci);
    i += child->edge.size();
    node = child;
  }
  if (!node->file) return false;
  node->file.reset();
  --file_count_;

  // Prune empty nodes and re-merge single-child pass-through nodes so the
  // tree stays compact under churn.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    Node* parent = it->first;
    const std::size_t ci = it->second;
    Node* child = parent->children[ci].get();
    if (!child->file && child->children.empty()) {
      parent->children.erase(parent->children.begin() +
                             static_cast<std::ptrdiff_t>(ci));
      --node_count_;
    } else if (!child->file && child->children.size() == 1) {
      std::unique_ptr<Node> only = std::move(child->children.front());
      child->edge.insert(child->edge.end(),
                         std::make_move_iterator(only->edge.begin()),
                         std::make_move_iterator(only->edge.end()));
      child->file = std::move(only->file);
      child->children = std::move(only->children);
      --node_count_;
      break;  // structure above is unchanged
    } else {
      break;
    }
  }
  return true;
}

const PathTrie::Node* PathTrie::descend(const std::vector<std::string>& comps,
                                        std::string* out_prefix) const {
  const Node* node = root_.get();
  std::string prefix;
  std::size_t i = 0;
  while (i < comps.size()) {
    const std::size_t ci = node->child_index(comps[i]);
    if (ci == static_cast<std::size_t>(-1)) return nullptr;
    const Node* child = node->children[ci].get();
    const std::size_t take = std::min(child->edge.size(), comps.size() - i);
    for (std::size_t k = 0; k < take; ++k) {
      if (child->edge[k] != comps[i + k]) return nullptr;
    }
    // Consume the whole edge (it may extend past the queried prefix — that
    // still counts as "under" the prefix).
    for (const auto& c : child->edge) {
      prefix.push_back('/');
      prefix += c;
    }
    i += take;
    node = child;
  }
  if (out_prefix) *out_prefix = std::move(prefix);
  return node;
}

bool PathTrie::contains_prefix_of(std::string_view path) const {
  const auto comps = split_path(path);
  const Node* node = root_.get();
  if (node->file) return true;
  std::size_t i = 0;
  while (i < comps.size()) {
    const std::size_t ci = node->child_index(comps[i]);
    if (ci == static_cast<std::size_t>(-1)) return false;
    const Node* child = node->children[ci].get();
    if (i + child->edge.size() > comps.size()) return false;
    for (std::size_t k = 0; k < child->edge.size(); ++k) {
      if (child->edge[k] != comps[i + k]) return false;
    }
    i += child->edge.size();
    node = child;
    if (node->file) return true;
  }
  return false;
}

bool PathTrie::contains_under(std::string_view prefix) const {
  const auto comps = split_path(prefix);
  const Node* node = descend(comps, nullptr);
  if (!node) return false;
  return node->file.has_value() || !node->children.empty();
}

namespace {

void dfs(const PathTrie::Node* node, std::string& path,
         const std::function<void(const std::string&, const FileMeta&)>& fn);

}  // namespace

void PathTrie::for_each_under(
    std::string_view prefix,
    const std::function<void(const std::string&, const FileMeta&)>& fn) const {
  const auto comps = split_path(prefix);
  std::string path;
  const Node* node = descend(comps, &path);
  if (!node) return;
  dfs(node, path, fn);
}

void PathTrie::for_each(
    const std::function<void(const std::string&, const FileMeta&)>& fn) const {
  std::string path;
  dfs(root_.get(), path, fn);
}

namespace {

void dfs(const PathTrie::Node* node, std::string& path,
         const std::function<void(const std::string&, const FileMeta&)>& fn) {
  if (node->file) fn(path.empty() ? "/" : path, *node->file);
  for (const auto& child : node->children) {
    const std::size_t mark = path.size();
    for (const auto& c : child->edge) {
      path.push_back('/');
      path += c;
    }
    dfs(child.get(), path, fn);
    path.resize(mark);
  }
}

std::size_t node_bytes(const PathTrie::Node* node) {
  std::size_t bytes = sizeof(PathTrie::Node);
  for (const auto& c : node->edge) bytes += sizeof(std::string) + c.capacity();
  bytes += node->children.capacity() * sizeof(void*);
  for (const auto& child : node->children) bytes += node_bytes(child.get());
  return bytes;
}

}  // namespace

std::size_t PathTrie::memory_bytes() const { return node_bytes(root_.get()); }

void PathTrie::clear() {
  root_ = std::make_unique<Node>();
  file_count_ = 0;
  node_count_ = 1;
}

}  // namespace adr::fs
