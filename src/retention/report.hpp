#pragma once
// Purge reports: everything the paper's evaluation section reads off a
// retention run — per-group purged/retained bytes and file counts (Figs.
// 9/10, Tables 4–6), affected-user counts (Fig. 11), and the retrospective
// pass bookkeeping unique to ActiveDR.

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "activeness/classifier.hpp"
#include "trace/types.hpp"
#include "util/time.hpp"

namespace adr::retention {

/// Maps a user to the activeness group the *report* should attribute them
/// to. Both policies are reported against the same grouping so the
/// comparison figures line up.
using GroupOf = std::function<activeness::UserGroup(trace::UserId)>;

struct GroupStats {
  std::uint64_t purged_bytes = 0;
  std::uint64_t retained_bytes = 0;
  std::size_t purged_files = 0;
  std::size_t retained_files = 0;
  std::size_t users_affected = 0;  ///< users who lost >= 1 file
  std::size_t users_total = 0;     ///< users with >= 1 file before the run
};

/// Wall-time attribution of one retention run, split by phase. ActiveDR
/// fills this from its obs timer spans; single-phase policies may leave it
/// zeroed. The same numbers accumulate into the global metrics registry
/// under the "policy.scan" / "policy.apply" spans.
struct PhaseTimings {
  double scan_seconds = 0.0;   ///< parallel decision phase, summed over passes
  double apply_seconds = 0.0;  ///< sequential apply phase, summed over passes

  double total_seconds() const { return scan_seconds + apply_seconds; }
};

struct PurgeReport {
  std::string policy;
  util::TimePoint when = 0;

  std::uint64_t target_purge_bytes = 0;  ///< 0 = no target (purge all expired)
  std::uint64_t purged_bytes = 0;
  std::size_t purged_files = 0;
  bool target_reached = true;

  /// ActiveDR only: how many retrospective passes each scan needed, total.
  int retrospective_passes_used = 0;
  /// Per-phase wall time of this run (see PhaseTimings).
  PhaseTimings phases;
  /// Files skipped because they were on the reservation list.
  std::size_t exempted_files = 0;

  /// Indexed by activeness::UserGroup.
  std::array<GroupStats, activeness::kGroupCount> by_group{};

  /// Users who lost at least one file in this run (unique, unordered) —
  /// lets callers accumulate Fig. 11's unique-affected-users over a year of
  /// triggers.
  std::vector<trace::UserId> affected_users;

  /// True when the run was a dry run: victims were selected and accounted
  /// but nothing was deleted (retained stats then describe the *untouched*
  /// state).
  bool dry_run = false;
  /// The selected victims, populated when the policy's record_victims (or
  /// dry-run) option is on — the purge list operators review before
  /// committing.
  std::vector<std::string> victim_paths;

  GroupStats& group(activeness::UserGroup g) {
    return by_group[static_cast<std::size_t>(g)];
  }
  const GroupStats& group(activeness::UserGroup g) const {
    return by_group[static_cast<std::size_t>(g)];
  }

  std::uint64_t total_retained_bytes() const;
  std::size_t total_users_affected() const;

  /// Human-readable table for operators.
  void print(std::ostream& out) const;
};

}  // namespace adr::retention
