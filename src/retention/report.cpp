#include "retention/report.hpp"

#include <ostream>

#include "util/stats.hpp"
#include "util/table.hpp"

namespace adr::retention {

std::uint64_t PurgeReport::total_retained_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& g : by_group) sum += g.retained_bytes;
  return sum;
}

std::size_t PurgeReport::total_users_affected() const {
  std::size_t sum = 0;
  for (const auto& g : by_group) sum += g.users_affected;
  return sum;
}

void PurgeReport::print(std::ostream& out) const {
  util::Table t("Purge report: " + policy + " @ " + util::format_date(when));
  t.set_headers({"Group", "Purged", "Purged files", "Retained",
                 "Retained files", "Affected users", "Users"});
  for (std::size_t gi = 0; gi < activeness::kGroupCount; ++gi) {
    const auto& g = by_group[gi];
    t.add_row({activeness::group_name(static_cast<activeness::UserGroup>(gi)),
               util::format_bytes(static_cast<double>(g.purged_bytes)),
               util::fmt_int(static_cast<std::int64_t>(g.purged_files)),
               util::format_bytes(static_cast<double>(g.retained_bytes)),
               util::fmt_int(static_cast<std::int64_t>(g.retained_files)),
               util::fmt_int(static_cast<std::int64_t>(g.users_affected)),
               util::fmt_int(static_cast<std::int64_t>(g.users_total))});
  }
  t.print(out);
  out << "  total purged: " << util::format_bytes(static_cast<double>(purged_bytes))
      << " (" << purged_files << " files)";
  if (target_purge_bytes > 0) {
    out << ", target "
        << util::format_bytes(static_cast<double>(target_purge_bytes))
        << (target_reached ? " [reached]" : " [NOT reached]");
  }
  if (retrospective_passes_used > 0) {
    out << ", retrospective passes: " << retrospective_passes_used;
  }
  if (exempted_files > 0) {
    out << ", exempted files: " << exempted_files;
  }
  if (phases.total_seconds() > 0.0) {
    out << "\n  phase timings: scan "
        << util::format_duration_seconds(phases.scan_seconds) << ", apply "
        << util::format_duration_seconds(phases.apply_seconds);
  }
  out << '\n';
}

}  // namespace adr::retention
