#pragma once
// Purge exemption (§3.4): the administrator-provided reservation list.
// Paths are held in the same compact prefix tree the paper describes, so the
// per-file exemption test during a scan is O(path components). Reserving a
// directory path exempts its whole subtree.
//
// The reservation list is a contract on *paths*: if a user renames a
// reserved file, the reservation silently lapses (the paper treats that as
// the user cancelling it) — exactly what path-keyed matching gives us.

#include <string>
#include <string_view>
#include <vector>

#include "fs/path_trie.hpp"

namespace adr::retention {

class ExemptionList {
 public:
  /// Reserve one file (or directory subtree) path.
  void reserve(std::string_view path);

  /// True if `path` is reserved, either exactly or via a reserved ancestor.
  bool is_exempt(std::string_view path) const;

  std::size_t size() const { return trie_.file_count(); }
  bool empty() const { return trie_.empty(); }

  /// All reserved paths, canonicalized, in lexicographic order.
  std::vector<std::string> reserved_paths() const;

  /// Load one path per line ('#' comments, blank lines ignored).
  static ExemptionList load(const std::string& file_path);
  void save(const std::string& file_path) const;

 private:
  fs::PathTrie trie_;
};

}  // namespace adr::retention
