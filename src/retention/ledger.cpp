#include "retention/ledger.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace adr::retention {

namespace {

std::vector<std::string> header() {
  std::vector<std::string> cols{
      "when",          "policy",        "target_bytes", "purged_bytes",
      "purged_files",  "target_reached", "retro_passes", "exempted_files"};
  for (const char* g : {"g1", "g2", "g3", "g4"}) {
    cols.push_back(std::string(g) + "_purged_bytes");
    cols.push_back(std::string(g) + "_purged_files");
    cols.push_back(std::string(g) + "_users_affected");
  }
  return cols;
}

}  // namespace

LedgerRow LedgerRow::from_report(const PurgeReport& report) {
  LedgerRow row;
  row.when = report.when;
  row.policy = report.policy;
  row.target_purge_bytes = report.target_purge_bytes;
  row.purged_bytes = report.purged_bytes;
  row.purged_files = report.purged_files;
  row.target_reached = report.target_reached;
  row.retrospective_passes_used = report.retrospective_passes_used;
  row.exempted_files = report.exempted_files;
  for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
    row.group_purged_bytes[g] = report.by_group[g].purged_bytes;
    row.group_purged_files[g] = report.by_group[g].purged_files;
    row.group_users_affected[g] = report.by_group[g].users_affected;
  }
  return row;
}

PurgeLedger::PurgeLedger(std::string path) : path_(std::move(path)) {}

void PurgeLedger::append(const PurgeReport& report) {
  const bool fresh = !std::filesystem::exists(path_);
  std::ofstream out(path_, std::ios::app);
  if (!out) throw std::runtime_error("PurgeLedger: cannot write " + path_);
  util::CsvWriter w(out);
  if (fresh) w.write_row(header());

  const LedgerRow row = LedgerRow::from_report(report);
  std::vector<std::string> cells{
      std::to_string(row.when),
      row.policy,
      std::to_string(row.target_purge_bytes),
      std::to_string(row.purged_bytes),
      std::to_string(row.purged_files),
      row.target_reached ? "1" : "0",
      std::to_string(row.retrospective_passes_used),
      std::to_string(row.exempted_files)};
  for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
    cells.push_back(std::to_string(row.group_purged_bytes[g]));
    cells.push_back(std::to_string(row.group_purged_files[g]));
    cells.push_back(std::to_string(row.group_users_affected[g]));
  }
  w.write_row(cells);
}

std::vector<LedgerRow> PurgeLedger::load() const {
  std::vector<LedgerRow> rows;
  std::ifstream in(path_);
  if (!in) return rows;
  util::CsvReader reader(in);
  if (!reader.read_header()) return rows;
  const std::size_t expected = header().size();
  while (auto csv_row = reader.next()) {
    if (csv_row->size() != expected) {
      throw std::runtime_error("PurgeLedger: malformed row in " + path_);
    }
    LedgerRow row;
    std::size_t i = 0;
    row.when = std::stoll((*csv_row)[i++]);
    row.policy = (*csv_row)[i++];
    row.target_purge_bytes = std::stoull((*csv_row)[i++]);
    row.purged_bytes = std::stoull((*csv_row)[i++]);
    row.purged_files = std::stoull((*csv_row)[i++]);
    row.target_reached = (*csv_row)[i++] == "1";
    row.retrospective_passes_used = std::stoi((*csv_row)[i++]);
    row.exempted_files = std::stoull((*csv_row)[i++]);
    for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
      row.group_purged_bytes[g] = std::stoull((*csv_row)[i++]);
      row.group_purged_files[g] = std::stoull((*csv_row)[i++]);
      row.group_users_affected[g] = std::stoull((*csv_row)[i++]);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace adr::retention
