#include "retention/ledger.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/logging.hpp"
#include "util/csv.hpp"
#include "util/fault.hpp"
#include "util/parse.hpp"

namespace adr::retention {

namespace {

std::vector<std::string> header() {
  std::vector<std::string> cols{
      "when",          "policy",        "target_bytes", "purged_bytes",
      "purged_files",  "target_reached", "retro_passes", "exempted_files"};
  for (const char* g : {"g1", "g2", "g3", "g4"}) {
    cols.push_back(std::string(g) + "_purged_bytes");
    cols.push_back(std::string(g) + "_purged_files");
    cols.push_back(std::string(g) + "_users_affected");
  }
  return cols;
}

}  // namespace

LedgerRow LedgerRow::from_report(const PurgeReport& report) {
  LedgerRow row;
  row.when = report.when;
  row.policy = report.policy;
  row.target_purge_bytes = report.target_purge_bytes;
  row.purged_bytes = report.purged_bytes;
  row.purged_files = report.purged_files;
  row.target_reached = report.target_reached;
  row.retrospective_passes_used = report.retrospective_passes_used;
  row.exempted_files = report.exempted_files;
  for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
    row.group_purged_bytes[g] = report.by_group[g].purged_bytes;
    row.group_purged_files[g] = report.by_group[g].purged_files;
    row.group_users_affected[g] = report.by_group[g].users_affected;
  }
  return row;
}

PurgeLedger::PurgeLedger(std::string path) : path_(std::move(path)) {}

void PurgeLedger::append(const PurgeReport& report) {
  auto& inj = util::FaultInjector::global();
  const bool fresh = !std::filesystem::exists(path_);
  if (inj.armed() && inj.should_fail("io.append.open")) {
    throw std::runtime_error("PurgeLedger: cannot write " + path_ +
                             " (injected)");
  }
  // Self-heal a torn tail from an earlier crashed append: if the file does
  // not end in a newline, the partial row is still the last physical line,
  // and appending onto it would corrupt this row too. Start a fresh line —
  // load() already drops the torn fragment.
  bool needs_newline = false;
  if (!fresh) {
    std::ifstream tail(path_, std::ios::binary | std::ios::ate);
    if (tail && tail.tellg() > 0) {
      tail.seekg(-1, std::ios::end);
      needs_newline = tail.get() != '\n';
    }
  }
  std::ofstream out(path_, std::ios::app);
  if (!out) throw std::runtime_error("PurgeLedger: cannot write " + path_);
  if (needs_newline) out.put('\n');

  // Render the full append into memory first so the fault injector can carve
  // off an arbitrary byte prefix — exactly what a crashed or ENOSPC'd append
  // leaves behind for load() to salvage.
  std::ostringstream pending;
  util::CsvWriter w(pending);
  if (fresh) w.write_row(header());

  const LedgerRow row = LedgerRow::from_report(report);
  std::vector<std::string> cells{
      std::to_string(row.when),
      row.policy,
      std::to_string(row.target_purge_bytes),
      std::to_string(row.purged_bytes),
      std::to_string(row.purged_files),
      row.target_reached ? "1" : "0",
      std::to_string(row.retrospective_passes_used),
      std::to_string(row.exempted_files)};
  for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
    cells.push_back(std::to_string(row.group_purged_bytes[g]));
    cells.push_back(std::to_string(row.group_purged_files[g]));
    cells.push_back(std::to_string(row.group_users_affected[g]));
  }
  w.write_row(cells);

  const std::string payload = pending.str();
  std::size_t allowed = payload.size();
  bool injected_failure = false;
  bool enospc = false;
  if (inj.armed()) {
    const auto d = inj.on_write("io.append.write", 0, payload.size());
    if (d.fail || d.allow < payload.size()) {
      allowed = d.allow;
      injected_failure = true;
      enospc = d.enospc;
    }
  }
  out.write(payload.data(), static_cast<std::streamsize>(allowed));
  out.flush();
  if (injected_failure) {
    throw std::runtime_error("PurgeLedger: short write to " + path_ +
                             (enospc ? " (injected ENOSPC)"
                                     : " (injected short write)"));
  }
  if (!out) throw std::runtime_error("PurgeLedger: write failed for " + path_);
}

std::vector<LedgerRow> PurgeLedger::load(SalvageReport* report) const {
  std::vector<LedgerRow> rows;
  SalvageReport local;
  SalvageReport& sr = report ? *report : local;
  std::ifstream in(path_);
  if (!in) return rows;
  util::CsvReader reader(in);
  if (!reader.read_header()) return rows;
  const std::size_t expected = header().size();

  // Parse greedily; remember where damage was so a malformed *final* row can
  // be classified as a torn tail (crash mid-append) rather than corruption.
  std::size_t total_rows = 0;
  std::size_t last_bad_row = 0;  // 1-based index into data rows, 0 = none
  while (auto csv_row = reader.next()) {
    ++total_rows;
    try {
      if (csv_row->size() != expected) {
        throw util::ParseError("expected " + std::to_string(expected) +
                               " columns, got " +
                               std::to_string(csv_row->size()));
      }
      const util::RowContext ctx{&path_, reader.line()};
      LedgerRow row;
      std::size_t i = 0;
      row.when = util::parse_i64((*csv_row)[i++], ctx, "when");
      row.policy = (*csv_row)[i++];
      row.target_purge_bytes =
          util::parse_u64((*csv_row)[i++], ctx, "target_bytes");
      row.purged_bytes = util::parse_u64((*csv_row)[i++], ctx, "purged_bytes");
      row.purged_files = util::parse_u64((*csv_row)[i++], ctx, "purged_files");
      row.target_reached = (*csv_row)[i++] == "1";
      row.retrospective_passes_used =
          util::parse_i32((*csv_row)[i++], ctx, "retro_passes");
      row.exempted_files =
          util::parse_u64((*csv_row)[i++], ctx, "exempted_files");
      for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
        row.group_purged_bytes[g] = util::parse_u64((*csv_row)[i++], ctx, "gb");
        row.group_purged_files[g] = util::parse_u64((*csv_row)[i++], ctx, "gf");
        row.group_users_affected[g] =
            util::parse_u64((*csv_row)[i++], ctx, "gu");
      }
      rows.push_back(std::move(row));
      ++sr.rows_loaded;
    } catch (const util::ParseError& e) {
      ++sr.rows_dropped;
      last_bad_row = total_rows;
      sr.notes.push_back(path_ + ":" + std::to_string(reader.line()) + ": " +
                         e.what());
    }
  }
  if (sr.rows_dropped > 0) {
    sr.torn_tail = last_bad_row == total_rows;
    static obs::Counter& salvaged =
        obs::MetricsRegistry::global().counter("ledger.salvaged_rows");
    salvaged.add(sr.rows_loaded);
    if (sr.torn_tail) {
      static obs::Counter& torn =
          obs::MetricsRegistry::global().counter("ledger.torn_tails");
      torn.add();
    }
    ADR_WARN << "PurgeLedger: salvaged " << sr.rows_loaded << " rows from "
             << path_ << ", dropped " << sr.rows_dropped
             << (sr.torn_tail ? " (torn tail)" : "");
  }
  return rows;
}

}  // namespace adr::retention
