#include "retention/value_policy.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace adr::retention {

ValuePolicy::ValuePolicy(ValueConfig config)
    : config_(std::move(config)), group_of_([](trace::UserId) {
        return activeness::UserGroup::kBothInactive;
      }) {}

void ValuePolicy::set_group_of(GroupOf group_of) {
  group_of_ = std::move(group_of);
}

namespace {

std::string extension_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return "";
  }
  return path.substr(dot);
}

}  // namespace

double ValuePolicy::value_of(const std::string& path, const fs::FileMeta& meta,
                             util::TimePoint now) const {
  const double age_days =
      std::max(0.0, static_cast<double>(now - meta.atime) / 86400.0);
  const double recency = std::exp(-age_days / config_.tau_days);

  const double size_term = std::clamp(
      1.0 - static_cast<double>(meta.size_bytes) / config_.max_size_bytes, 0.0,
      1.0);

  const double freq = std::min(
      1.0, static_cast<double>(meta.access_count) / config_.freq_ref);

  double type_score = config_.default_type_score;
  const auto it = config_.type_scores.find(extension_of(path));
  if (it != config_.type_scores.end()) type_score = it->second;

  return config_.w_recency * recency + config_.w_size * size_term +
         config_.w_freq * freq + config_.w_type * type_score;
}

PurgeReport ValuePolicy::run(fs::Vfs& vfs, util::TimePoint now,
                             std::uint64_t target_purge_bytes) const {
  PurgeReport report;
  report.policy = name();
  report.when = now;
  report.target_purge_bytes = target_purge_bytes;
  fill_users_total(report, vfs, group_of_);

  struct Scored {
    double value;
    std::string path;
    trace::UserId owner;
    std::uint64_t size;
  };
  std::vector<Scored> scored;
  scored.reserve(vfs.file_count());
  vfs.for_each([&](const std::string& path, const fs::FileMeta& meta) {
    scored.push_back(
        {value_of(path, meta, now), path, meta.owner, meta.size_bytes});
  });
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.path < b.path;  // deterministic ties
  });

  const bool no_target = target_purge_bytes == 0;
  std::uint64_t remaining = target_purge_bytes;
  std::vector<bool> seen_user;
  for (const auto& victim : scored) {
    if (no_target) {
      if (victim.value >= config_.value_floor) break;  // sorted: rest valuable
    } else if (remaining == 0) {
      break;
    }
    vfs.remove(victim.path, victim.owner);
    report.purged_bytes += victim.size;
    ++report.purged_files;
    auto& g = report.group(group_of_(victim.owner));
    g.purged_bytes += victim.size;
    ++g.purged_files;
    if (victim.owner != trace::kInvalidUser) {
      if (victim.owner >= seen_user.size()) {
        seen_user.resize(victim.owner + 1, false);
      }
      if (!seen_user[victim.owner]) {
        seen_user[victim.owner] = true;
        ++g.users_affected;
        report.affected_users.push_back(victim.owner);
      }
    }
    if (!no_target) remaining -= std::min(remaining, victim.size);
  }

  report.target_reached = no_target || remaining == 0;
  fill_retained_stats(report, vfs, group_of_);
  return report;
}

}  // namespace adr::retention
