#pragma once
// The purge ledger: an append-only CSV history of every retention run.
//
// Operators need an audit trail — §3.4's "report to the administrator via
// specified reporting mechanism". Each run appends one row summarizing the
// report (target, purged volume, per-group breakdown, retrospective-pass
// usage); the ledger can be reloaded for dashboards or the CLI's history
// view.

#include <string>
#include <vector>

#include "retention/report.hpp"

namespace adr::retention {

/// One ledger row — the flattened summary of a PurgeReport.
struct LedgerRow {
  util::TimePoint when = 0;
  std::string policy;
  std::uint64_t target_purge_bytes = 0;
  std::uint64_t purged_bytes = 0;
  std::size_t purged_files = 0;
  bool target_reached = true;
  int retrospective_passes_used = 0;
  std::size_t exempted_files = 0;
  /// Per group (G1..G4): purged bytes / purged files / users affected.
  std::array<std::uint64_t, activeness::kGroupCount> group_purged_bytes{};
  std::array<std::size_t, activeness::kGroupCount> group_purged_files{};
  std::array<std::size_t, activeness::kGroupCount> group_users_affected{};

  static LedgerRow from_report(const PurgeReport& report);
};

class PurgeLedger {
 public:
  /// Bind to a CSV file. The file need not exist yet.
  explicit PurgeLedger(std::string path);

  /// Append one report (creates the file with a header on first use).
  void append(const PurgeReport& report);

  /// All rows currently on disk (empty if the file does not exist).
  std::vector<LedgerRow> load() const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace adr::retention
