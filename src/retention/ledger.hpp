#pragma once
// The purge ledger: an append-only CSV history of every retention run.
//
// Operators need an audit trail — §3.4's "report to the administrator via
// specified reporting mechanism". Each run appends one row summarizing the
// report (target, purged volume, per-group breakdown, retrospective-pass
// usage); the ledger can be reloaded for dashboards or the CLI's history
// view.

#include <string>
#include <vector>

#include "retention/report.hpp"

namespace adr::retention {

/// One ledger row — the flattened summary of a PurgeReport.
struct LedgerRow {
  util::TimePoint when = 0;
  std::string policy;
  std::uint64_t target_purge_bytes = 0;
  std::uint64_t purged_bytes = 0;
  std::size_t purged_files = 0;
  bool target_reached = true;
  int retrospective_passes_used = 0;
  std::size_t exempted_files = 0;
  /// Per group (G1..G4): purged bytes / purged files / users affected.
  std::array<std::uint64_t, activeness::kGroupCount> group_purged_bytes{};
  std::array<std::size_t, activeness::kGroupCount> group_purged_files{};
  std::array<std::size_t, activeness::kGroupCount> group_users_affected{};

  static LedgerRow from_report(const PurgeReport& report);
};

/// What PurgeLedger::load() recovered from a damaged file. An append-only
/// ledger cannot carry a whole-file CRC footer (every append would invalidate
/// it), so a crash mid-append legitimately leaves a truncated final row;
/// load() salvages every intact row and reports — never throws on — the
/// damage (DESIGN.md §10.2).
struct SalvageReport {
  std::size_t rows_loaded = 0;   // intact rows recovered
  std::size_t rows_dropped = 0;  // malformed rows skipped (incl. torn tail)
  bool torn_tail = false;        // the *final* row was truncated mid-write
  std::vector<std::string> notes;  // one human-readable line per dropped row

  bool damaged() const { return rows_dropped > 0; }
};

class PurgeLedger {
 public:
  /// Bind to a CSV file. The file need not exist yet.
  explicit PurgeLedger(std::string path);

  /// Append one report (creates the file with a header on first use).
  /// Fault points: io.append.open, io.append.write.
  void append(const PurgeReport& report);

  /// All intact rows currently on disk (empty if the file does not exist).
  /// Malformed rows — a torn tail from a crashed append, or interior
  /// damage — are dropped and tallied in `report` (and in the
  /// ledger.salvaged_rows / ledger.torn_tails counters), not thrown.
  std::vector<LedgerRow> load(SalvageReport* report = nullptr) const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace adr::retention
