#include "retention/activedr_policy.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_set>
#include <utility>
#include <vector>

#include "fs/purge_index.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace adr::retention {

namespace {

obs::Counter& victims_considered() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("policy.victims_considered");
  return c;
}

obs::Counter& victims_purged() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("policy.victims_purged");
  return c;
}

obs::Counter& retrospective_passes() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("policy.retrospective_passes");
  return c;
}

obs::Counter& groups_scanned() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("policy.groups_scanned");
  return c;
}

obs::Counter& indexed_scans() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("policy.scan.indexed");
  return c;
}

obs::Counter& walk_scans() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("policy.scan.walk");
  return c;
}

obs::Counter& index_candidates() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("policy.index_candidates");
  return c;
}

}  // namespace

ActiveDrPolicy::ActiveDrPolicy(ActiveDrConfig config,
                               const trace::UserRegistry& registry)
    : config_(config), registry_(&registry) {}

void ActiveDrPolicy::set_exemptions(ExemptionList exemptions) {
  exemptions_ = std::move(exemptions);
}

std::string ActiveDrPolicy::name() const {
  return "ActiveDR-" + std::to_string(config_.initial_lifetime_days) + "d";
}

util::Duration ActiveDrPolicy::effective_lifetime(
    const activeness::UserActiveness& ua, int pass) const {
  const double mult =
      activeness::lifetime_multiplier(ua, config_.lifetime_mode,
                                      config_.min_multiplier,
                                      config_.max_multiplier) *
      std::pow(1.0 - config_.retrospective_decay, pass);
  const double seconds =
      static_cast<double>(util::days(config_.initial_lifetime_days)) * mult;
  return static_cast<util::Duration>(seconds);
}

PurgeReport ActiveDrPolicy::run(fs::Vfs& vfs, util::TimePoint now,
                                std::uint64_t target_purge_bytes,
                                const activeness::ScanPlan& plan) const {
  PurgeReport report;
  report.policy = name();
  report.when = now;
  report.target_purge_bytes = target_purge_bytes;

  // Dense user -> group lookup for report attribution.
  std::vector<activeness::UserGroup> group_lookup;
  for (std::size_t gi = 0; gi < activeness::kGroupCount; ++gi) {
    for (const auto& ua : plan.groups[gi]) {
      if (ua.user >= group_lookup.size()) {
        group_lookup.resize(ua.user + 1, activeness::UserGroup::kBothInactive);
      }
      group_lookup[ua.user] = static_cast<activeness::UserGroup>(gi);
    }
  }
  const GroupOf fast_group_of = [&group_lookup](trace::UserId user) {
    return user < group_lookup.size() ? group_lookup[user]
                                      : activeness::UserGroup::kBothInactive;
  };

  fill_users_total(report, vfs, fast_group_of);

  report.dry_run = config_.dry_run;
  const bool record = config_.dry_run || config_.record_victims;
  const bool indexed = config_.scan_mode != ScanMode::kWalk;
  (indexed ? indexed_scans() : walk_scans()).add();
  const fs::PurgeIndex& index = vfs.purge_index();

  // Walk-mode dry runs cannot mutate the vfs, so later passes would
  // re-select earlier victims; dedupe by interned path id. (The indexed
  // path needs no dedup: its cursor visits each candidate exactly once.)
  std::unordered_set<fs::PathId> claimed;

  std::uint64_t remaining = target_purge_bytes;
  const bool no_target = target_purge_bytes == 0;
  std::vector<bool> user_affected;
  std::atomic<std::size_t> exempted{0};

  // Victims travel as interned ids — no per-victim path copies; the string
  // is only touched for vfs.remove() and opt-in recording.
  struct Victim {
    fs::PathId id;
    util::TimePoint atime;
    std::uint64_t size;
  };
  const auto victim_order = [](const Victim& a, const Victim& b) {
    return a.atime != b.atime ? a.atime < b.atime : a.id < b.id;
  };

  obs::TimerSpan run_span("policy.run");
  bool done = false;
  for (const activeness::UserGroup group : activeness::kScanOrder) {
    if (done) break;
    const auto& users = plan.group(group);
    if (users.empty()) continue;
    groups_scanned().add();

    const int max_pass = no_target ? 0 : config_.retrospective_passes;

    // Indexed scan-once: materialize each user's candidates one time, at
    // the *widest* cutoff this group can ever reach (the fully decayed
    // lifetime of the last retrospective pass). The 20%-per-pass decay only
    // widens the victim window, so every pass's victims are a prefix of
    // this list; passes then advance a cursor instead of re-walking.
    std::vector<std::vector<Victim>> candidates;
    std::vector<std::size_t> cursor;
    if (indexed) {
      obs::TimerSpan scan_span("policy.scan");
      candidates.resize(users.size());
      cursor.assign(users.size(), 0);
      util::global_pool().parallel_for(0, users.size(), [&](std::size_t ui) {
        const auto& ua = users[ui];
        const util::TimePoint widest_cutoff =
            now - effective_lifetime(ua, max_pass);
        std::vector<fs::PurgeIndex::Entry> entries;
        index.collect_expired(ua.user, widest_cutoff, entries);
        auto& mine = candidates[ui];
        mine.reserve(entries.size());
        for (const auto& e : entries) {
          if (exemptions_.is_exempt(index.path(e.id))) {
            exempted.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          mine.push_back({e.id, e.atime, e.size_bytes});
        }
      });
      report.phases.scan_seconds += scan_span.stop();
      std::size_t considered = 0;
      for (const auto& mine : candidates) considered += mine.size();
      victims_considered().add(considered);
      index_candidates().add(considered);
    }

    for (int pass = 0; pass <= max_pass && !done; ++pass) {
      if (pass > 0) {
        ++report.retrospective_passes_used;
        retrospective_passes().add();
      }

      // Walk-mode decision phase: parallel over disjoint user directories,
      // re-walked every pass (the seed behaviour the bench baselines).
      std::vector<std::vector<Victim>> victims;
      if (!indexed) {
        victims.resize(users.size());
        obs::TimerSpan scan_span("policy.scan");
        util::global_pool().parallel_for(0, users.size(), [&](std::size_t ui) {
          const auto& ua = users[ui];
          const util::Duration lifetime = effective_lifetime(ua, pass);
          // Exemption accounting must match the indexed scan: an exempt
          // file counts once per scanned group, and only if it is expired
          // at the group's *widest* (fully decayed) cutoff — the same
          // population the indexed scan materializes. Counting on every
          // re-walked pass, or counting unexpired exempt files, made
          // exempted_files diverge between the two modes.
          const util::Duration widest_lifetime = effective_lifetime(ua, max_pass);
          const std::string home = registry_->home_dir(ua.user);
          auto& mine = victims[ui];
          vfs.for_each_under(home, [&](const std::string& path,
                                       const fs::FileMeta& meta) {
            if (exemptions_.is_exempt(path)) {
              if (pass == 0 && now - meta.atime > widest_lifetime) {
                exempted.fetch_add(1, std::memory_order_relaxed);
              }
              return;
            }
            if (now - meta.atime > lifetime) {
              mine.push_back({meta.path_id, meta.atime, meta.size_bytes});
            }
          });
          // Oldest first, matching the index order, so both modes select
          // identical victims when a byte target stops mid-user.
          std::sort(mine.begin(), mine.end(), victim_order);
        });
        report.phases.scan_seconds += scan_span.stop();
        std::size_t considered = 0;
        for (const auto& mine : victims) considered += mine.size();
        victims_considered().add(considered);
      }

      // Apply phase: sequential, ascending activeness order; stop exactly
      // at the target.
      obs::TimerSpan apply_span("policy.apply");
      bool purged_any = false;
      for (std::size_t ui = 0; ui < users.size() && !done; ++ui) {
        const trace::UserId user = users[ui].user;
        const auto apply = [&](const Victim& v) {
          const std::string& path = index.path(v.id);
          if (config_.dry_run) {
            if (indexed) {
              // Cursor semantics already guarantee single selection.
            } else if (!claimed.insert(v.id).second) {
              return;  // earlier pass
            }
            if (record) report.victim_paths.push_back(path);
          } else {
            if (record) report.victim_paths.push_back(path);
            // Owner hint: a cold victim's subtree may be evicted under a
            // memory budget; the hint faults it back for the removal.
            if (!vfs.remove(path, user)) {
              if (record) report.victim_paths.pop_back();
              return;  // purged in an earlier pass
            }
          }
          purged_any = true;
          victims_purged().add();
          report.purged_bytes += v.size;
          ++report.purged_files;
          auto& g = report.group(group);
          g.purged_bytes += v.size;
          ++g.purged_files;
          if (user != trace::kInvalidUser) {
            if (user >= user_affected.size())
              user_affected.resize(user + 1, false);
            if (!user_affected[user]) {
              user_affected[user] = true;
              ++g.users_affected;
              report.affected_users.push_back(user);
            }
          }
          if (!no_target) {
            remaining -= std::min(remaining, v.size);
            if (remaining == 0) done = true;
          }
        };

        if (indexed) {
          // This pass's victims: the candidate prefix under the decayed
          // cutoff, starting where the previous pass left off.
          const util::TimePoint cutoff =
              now - effective_lifetime(users[ui], pass);
          const auto& mine = candidates[ui];
          std::size_t& cur = cursor[ui];
          while (!done && cur < mine.size() && mine[cur].atime < cutoff) {
            apply(mine[cur]);
            ++cur;
          }
        } else {
          for (const auto& v : victims[ui]) {
            apply(v);
            if (done) break;
          }
        }
      }
      report.phases.apply_seconds += apply_span.stop();
      if (!purged_any && pass > 0) {
        // Decayed lifetime freed nothing new; further decay of this group
        // can only help if files sit just under the current threshold —
        // keep going (cheap) unless *every* user's lifetime has bottomed
        // out. Probing only the first (lowest-ranked) user would stop the
        // decay for the whole group while later users still have positive
        // lifetimes left to shrink.
        util::Duration max_lifetime = 0;
        for (const auto& ua : users) {
          max_lifetime = std::max(max_lifetime, effective_lifetime(ua, pass));
          if (max_lifetime > 0) break;
        }
        if (max_lifetime == 0) break;
      }
      ADR_DEBUG << name() << ": group '" << activeness::group_name(group)
                << "' pass " << pass << " done, remaining "
                << (no_target ? std::string("(no target)")
                              : std::to_string(remaining) + " bytes");
    }
  }

  report.exempted_files = exempted.load();
  report.target_reached = no_target || remaining == 0;
  if (!report.target_reached) {
    ADR_WARN << name() << ": purge target NOT reached; " << remaining
             << " bytes short after all groups and retrospective passes";
  }
  fill_retained_stats(report, vfs, fast_group_of);
  return report;
}

}  // namespace adr::retention
