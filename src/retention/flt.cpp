#include "retention/flt.hpp"

#include <utility>
#include <vector>

#include "fs/purge_index.hpp"
#include "obs/span.hpp"
#include "util/logging.hpp"

namespace adr::retention {

FltPolicy::FltPolicy(FltConfig config)
    : config_(config), group_of_([](trace::UserId) {
        return activeness::UserGroup::kBothInactive;
      }) {}

void FltPolicy::set_group_of(GroupOf group_of) {
  group_of_ = std::move(group_of);
}

std::string FltPolicy::name() const {
  return "FLT-" + std::to_string(config_.lifetime_days) + "d";
}

PurgeReport FltPolicy::run(fs::Vfs& vfs, util::TimePoint now,
                           std::uint64_t target_purge_bytes) const {
  PurgeReport report;
  report.policy = name();
  report.when = now;
  report.target_purge_bytes = target_purge_bytes;
  fill_users_total(report, vfs, group_of_);

  const util::Duration lifetime = util::days(config_.lifetime_days);
  const bool no_target = target_purge_bytes == 0;
  // Strict runs purge the whole expired set, so its order is unobservable
  // and the index is always safe; purge-to-target runs keep the documented
  // trie-DFS "system scan order" unless the caller opts into the index
  // (whose order is oldest-first).
  const bool indexed =
      config_.scan_mode == ScanMode::kIndexed ||
      (config_.scan_mode == ScanMode::kAuto && no_target);

  struct Victim {
    fs::PathId id;
    trace::UserId owner;
    std::uint64_t size;
  };
  std::vector<Victim> victims;
  {
    obs::TimerSpan scan_span("policy.scan");
    if (indexed) {
      for (const auto& oe :
           vfs.purge_index().collect_expired_all(now - lifetime)) {
        victims.push_back({oe.entry.id, oe.owner, oe.entry.size_bytes});
      }
    } else {
      vfs.for_each([&](const std::string&, const fs::FileMeta& meta) {
        if (now - meta.atime > lifetime) {
          victims.push_back({meta.path_id, meta.owner, meta.size_bytes});
        }
      });
    }
    report.phases.scan_seconds += scan_span.stop();
  }

  report.dry_run = config_.dry_run;
  const bool record = config_.dry_run || config_.record_victims;
  std::vector<bool> seen_user;  // affected-user dedup, indexed by UserId
  std::uint64_t remaining = target_purge_bytes;
  obs::TimerSpan apply_span("policy.apply");
  for (const auto& v : victims) {
    if (!no_target && remaining == 0) break;
    const std::string& path = vfs.purge_index().path(v.id);
    if (record) report.victim_paths.push_back(path);
    if (!config_.dry_run) vfs.remove(path, v.owner);
    report.purged_bytes += v.size;
    ++report.purged_files;
    auto& g = report.group(group_of_(v.owner));
    g.purged_bytes += v.size;
    ++g.purged_files;
    if (v.owner != trace::kInvalidUser) {
      if (v.owner >= seen_user.size()) seen_user.resize(v.owner + 1, false);
      if (!seen_user[v.owner]) {
        seen_user[v.owner] = true;
        ++g.users_affected;
        report.affected_users.push_back(v.owner);
      }
    }
    if (!no_target) remaining -= std::min(remaining, v.size);
  }
  report.phases.apply_seconds += apply_span.stop();

  report.target_reached = no_target || remaining == 0;
  if (!report.target_reached) {
    ADR_INFO << report.policy << ": purge target not reached ("
             << remaining << " bytes short; only expired files are eligible)";
  }
  fill_retained_stats(report, vfs, group_of_);
  return report;
}

}  // namespace adr::retention
