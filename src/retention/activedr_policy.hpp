#pragma once
// The ActiveDR data-retention procedure (§3.4).
//
// Given a scan plan (users bucketed into the four activeness groups, sorted
// ascending), a run proceeds group by group in ascending activeness order:
//
//   for each group in [Both Inactive, Outcome Active Only,
//                      Operation Active Only, Both Active]:
//     for pass in 0 .. retrospective_passes:          # pass 0 = normal scan
//       decayed multiplier = multiplier x (1 - decay)^pass
//       1. decision phase (parallel over users): for every non-exempt file
//          in the user's scratch directory, mark it a victim when
//          now − atime > initial_lifetime x decayed multiplier   (Eq. 7)
//       2. apply phase (sequential, ascending user order): purge victims
//          until the byte target is met; stop everything once it is.
//     if target met: stop; else move to the next group.
//
// If the target is still unmet after the Both Active group's passes, the run
// stops and reports target_reached = false (§3.4's "report to the
// administrator").
//
// The parallel-decision / ordered-apply split mirrors the paper's mpi4py
// implementation: ranks scan disjoint user shards concurrently (Fig. 12b–d)
// while the purge-target guarantee stays exact.
//
// Scan modes (ScanMode, DESIGN.md "Purge index"): the default indexed mode
// answers the Eq. 7 victim query as an atime range over the Vfs's purge
// index, and makes the retrospective passes *scan-once* — a group's
// candidates are materialized a single time at the fully-decayed cutoff
// (decay only widens the victim window, so each pass's victims are a prefix)
// and passes 1..5 just advance a per-user cursor. kWalk preserves the
// original per-pass directory re-walks as the measurable baseline. Within a
// user, both modes purge oldest-first (atime, then path id), so they select
// identical victims.

#include <cstdint>
#include <string>

#include "activeness/classifier.hpp"
#include "retention/exemption.hpp"
#include "retention/policy.hpp"
#include "trace/user_registry.hpp"

namespace adr::retention {

struct ActiveDrConfig {
  /// Initial file lifetime d in days (Eq. 7); the paper uses the facility's
  /// FLT lifetime (90 days on Spider II).
  int initial_lifetime_days = 90;

  /// Number of retrospective re-scans of a group after its normal scan
  /// ("currently five times in our implementation").
  int retrospective_passes = 5;
  /// Per-pass rank decay ("currently 20%").
  double retrospective_decay = 0.20;

  /// Which reading of Eq. 7 to apply to inactive categories (DESIGN.md §5).
  activeness::LifetimeMode lifetime_mode =
      activeness::LifetimeMode::kActiveCategoriesOnly;
  /// Clamps for the lifetime multiplier.
  double min_multiplier = 1e-3;
  double max_multiplier = 1e6;

  /// Select and account victims without deleting anything (operators review
  /// the purge list first). Implies record_victims.
  bool dry_run = false;
  /// Record every victim path into PurgeReport::victim_paths.
  bool record_victims = false;

  /// kAuto/kIndexed: scan the Vfs's atime-ordered purge index — candidates
  /// materialize once per group and retrospective passes advance a cursor
  /// (no re-walks). kWalk: the seed's per-pass trie walk. Both modes
  /// produce identical PurgeReports: the same victims (per user, ascending
  /// atime with path-id tie-break) and the same exempted_files count (an
  /// exempt file counts once per scanned group, and only when expired at
  /// the group's widest fully-decayed cutoff — the candidate population
  /// the index materializes).
  ScanMode scan_mode = ScanMode::kAuto;
};

class ActiveDrPolicy {
 public:
  ActiveDrPolicy(ActiveDrConfig config, const trace::UserRegistry& registry);

  /// Install the administrator's reservation list (optional).
  void set_exemptions(ExemptionList exemptions);
  const ExemptionList& exemptions() const { return exemptions_; }

  /// Purge at `now` until `target_purge_bytes` are freed (0 = no target:
  /// one normal pass over every group, purging everything expired under the
  /// adjusted lifetimes).
  PurgeReport run(fs::Vfs& vfs, util::TimePoint now,
                  std::uint64_t target_purge_bytes,
                  const activeness::ScanPlan& plan) const;

  /// The effective file lifetime (seconds) ActiveDR grants this user at the
  /// given retrospective pass — exposed for tests and the ablation benches.
  util::Duration effective_lifetime(const activeness::UserActiveness& ua,
                                    int pass) const;

  const ActiveDrConfig& config() const { return config_; }
  std::string name() const;

 private:
  ActiveDrConfig config_;
  const trace::UserRegistry* registry_;
  ExemptionList exemptions_;
};

}  // namespace adr::retention
