#include "retention/exemption.hpp"

#include <fstream>
#include <stdexcept>

namespace adr::retention {

void ExemptionList::reserve(std::string_view path) {
  trie_.insert(path, fs::FileMeta{});
}

bool ExemptionList::is_exempt(std::string_view path) const {
  return trie_.contains_prefix_of(path);
}

std::vector<std::string> ExemptionList::reserved_paths() const {
  std::vector<std::string> out;
  out.reserve(trie_.file_count());
  trie_.for_each([&](const std::string& p, const fs::FileMeta&) {
    out.push_back(p);
  });
  return out;
}

ExemptionList ExemptionList::load(const std::string& file_path) {
  std::ifstream in(file_path);
  if (!in) throw std::runtime_error("ExemptionList: cannot open " + file_path);
  ExemptionList list;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r'))
      line.pop_back();
    std::size_t start = 0;
    while (start < line.size() && (line[start] == ' ' || line[start] == '\t'))
      ++start;
    if (start >= line.size()) continue;
    list.reserve(std::string_view(line).substr(start));
  }
  return list;
}

void ExemptionList::save(const std::string& file_path) const {
  std::ofstream out(file_path);
  if (!out) throw std::runtime_error("ExemptionList: cannot write " + file_path);
  for (const auto& p : reserved_paths()) out << p << '\n';
}

}  // namespace adr::retention
