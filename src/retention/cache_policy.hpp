#pragma once
// The "scratch-as-a-cache" strategy (§2, Monti et al. [26]).
//
// Under this model a file may only stay in scratch while an application is
// using it; everything else is offloaded to the archive immediately. The
// paper excludes the approach because the constant load/offload traffic
// burdens the storage system and lengthens workflows — implementing it lets
// the related-work bench *quantify* that exclusion argument (see
// bench_related_work's restore-traffic column).
//
// In trace-replay terms "in use" means accessed within a short horizon (a
// running job's span); every trigger evicts all files idle longer than the
// horizon, with no byte target — the cache holds only the working set.

#include <string>

#include "retention/policy.hpp"

namespace adr::retention {

struct ScratchCacheConfig {
  /// How long after its last access a file still counts as "in use by a
  /// job". Titan jobs are capped at ~24h; default 2 days is generous.
  int in_use_horizon_days = 2;
};

class ScratchCachePolicy {
 public:
  explicit ScratchCachePolicy(ScratchCacheConfig config);

  void set_group_of(GroupOf group_of);

  /// Evict everything idle beyond the horizon. The byte target is ignored:
  /// a cache holds exactly the working set, no more and no less.
  PurgeReport run(fs::Vfs& vfs, util::TimePoint now,
                  std::uint64_t target_purge_bytes = 0) const;

  const ScratchCacheConfig& config() const { return config_; }
  std::string name() const {
    return "ScratchCache-" + std::to_string(config_.in_use_horizon_days) + "d";
  }

 private:
  ScratchCacheConfig config_;
  GroupOf group_of_;
};

}  // namespace adr::retention
