#pragma once
// The fixed-lifetime (FLT) baseline (§2): purge every file whose age since
// last access exceeds a fixed lifetime. This is the policy deployed at the
// facilities of Table 1, and the baseline all paper figures compare against.
//
// Two modes:
//  * strict (target = 0): purge *all* expired files — the classic cron
//    behaviour behind Fig. 1;
//  * purge-to-target: purge expired files in system scan order (the trie's
//    DFS path order) until the byte target is met — the "same purge target"
//    comparison mode of §4. FLT has no recourse beyond expired files: if
//    they don't cover the target the run reports target_reached = false.

#include <cstdint>
#include <string>

#include "retention/policy.hpp"

namespace adr::retention {

struct FltConfig {
  int lifetime_days = 90;
  /// Select and account victims without deleting anything.
  bool dry_run = false;
  /// Record every victim path into PurgeReport::victim_paths.
  bool record_victims = false;

  /// kIndexed: read expired files straight off the Vfs's atime-ordered
  /// purge index, oldest first, instead of walking the trie. kWalk keeps
  /// the legacy trie-DFS path order. kAuto picks indexed for strict
  /// (no-target) runs — where the victim *set* is order-independent — and
  /// the walk for purge-to-target runs, whose documented semantics purge in
  /// system scan order.
  ScanMode scan_mode = ScanMode::kAuto;

  /// Facility presets from Table 1.
  static FltConfig ncar() { return {120}; }
  static FltConfig olcf() { return {90}; }
  static FltConfig tacc() { return {30}; }
  static FltConfig nersc() { return {84}; }  // "12-week old"
};

class FltPolicy {
 public:
  explicit FltPolicy(FltConfig config);

  /// Attribute per-group report rows (comparison figures group FLT results
  /// by the ActiveDR classification). Defaults to Both-Inactive for all.
  void set_group_of(GroupOf group_of);

  /// Purge at `now`; free at least `target_purge_bytes` (0 = all expired).
  PurgeReport run(fs::Vfs& vfs, util::TimePoint now,
                  std::uint64_t target_purge_bytes = 0) const;

  const FltConfig& config() const { return config_; }
  std::string name() const;

 private:
  FltConfig config_;
  GroupOf group_of_;
};

}  // namespace adr::retention
