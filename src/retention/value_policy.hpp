#pragma once
// The value-based retention family (§2's second strategy class).
//
// The paper surveys value-based approaches (Wijnhoven et al., Turczyk et
// al., ILM work) and excludes them for lacking a consensus file-value
// definition — every site would weight the attributes differently. We
// implement the family as a weighted scoring policy so the exclusion
// argument itself is testable: the weights ARE the configuration burden the
// paper criticizes.
//
// value(f) = w_recency * exp(-age / tau)
//          + w_size    * (1 - size / max_size)        (small files valuable)
//          + w_freq    * min(1, accesses / freq_ref)
//          + w_type    * type_score(extension)
//
// A run sorts candidate files by ascending value and purges until the byte
// target is met (no target: purges every file below `value_floor`).

#include <map>
#include <string>

#include "retention/policy.hpp"

namespace adr::retention {

struct ValueConfig {
  double w_recency = 0.5;
  double w_size = 0.1;
  double w_freq = 0.3;
  double w_type = 0.1;

  /// Recency decay constant (days): value halves roughly every tau*ln2.
  double tau_days = 30.0;
  /// Access count treated as "fully valuable".
  double freq_ref = 10.0;
  /// Size normalization ceiling (bytes).
  double max_size_bytes = 1e12;

  /// Per-extension scores in [0,1]; files with unlisted extensions get
  /// `default_type_score`. Example: {".h5", 0.9} keeps datasets longer
  /// than {".tmp", 0.0}.
  std::map<std::string, double> type_scores;
  double default_type_score = 0.5;

  /// No-target mode: purge every file whose value falls below this.
  double value_floor = 0.2;
};

class ValuePolicy {
 public:
  explicit ValuePolicy(ValueConfig config);

  /// The value score of one file at time `now` (exposed for tests/tuning).
  double value_of(const std::string& path, const fs::FileMeta& meta,
                  util::TimePoint now) const;

  void set_group_of(GroupOf group_of);

  /// Purge ascending-value files until `target_purge_bytes` are freed
  /// (0 = purge everything below the value floor).
  PurgeReport run(fs::Vfs& vfs, util::TimePoint now,
                  std::uint64_t target_purge_bytes = 0) const;

  const ValueConfig& config() const { return config_; }
  std::string name() const { return "ValueBased"; }

 private:
  ValueConfig config_;
  GroupOf group_of_;
};

}  // namespace adr::retention
