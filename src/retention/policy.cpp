#include "retention/policy.hpp"

namespace adr::retention {

std::uint64_t purge_target_bytes(const fs::Vfs& vfs,
                                 double target_utilization) {
  if (target_utilization < 0.0) target_utilization = 0.0;
  const double target_used =
      target_utilization * static_cast<double>(vfs.capacity_bytes());
  const double used = static_cast<double>(vfs.total_bytes());
  if (used <= target_used) return 0;
  return static_cast<std::uint64_t>(used - target_used);
}

void fill_users_total(PurgeReport& report, const fs::Vfs& vfs,
                      const GroupOf& group_of) {
  for (const auto& [user, usage] : vfs.usage_by_user()) {
    if (usage.files == 0) continue;
    ++report.group(group_of(user)).users_total;
  }
}

void fill_retained_stats(PurgeReport& report, const fs::Vfs& vfs,
                         const GroupOf& group_of) {
  for (auto& g : report.by_group) {
    g.retained_bytes = 0;
    g.retained_files = 0;
  }
  for (const auto& [user, usage] : vfs.usage_by_user()) {
    if (usage.files == 0) continue;
    auto& g = report.group(group_of(user));
    g.retained_bytes += usage.bytes;
    g.retained_files += usage.files;
  }
}

}  // namespace adr::retention
