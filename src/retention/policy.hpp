#pragma once
// Shared retention-policy vocabulary.
//
// A policy run purges files from a Vfs at a trigger time, optionally until a
// purge target is met. Targets follow the paper's convention: the
// administrator states the space utilization the scratch space should reach
// (e.g. 50% of capacity); the byte deficit between current usage and that
// target is what a run must free.

#include <cstdint>

#include "fs/vfs.hpp"
#include "retention/report.hpp"

namespace adr::retention {

/// How a policy run finds expired files.
enum class ScanMode {
  /// Policy-specific default: ActiveDR always takes the indexed path (its
  /// victim selection is identical in both modes by construction); FLT
  /// takes it only for strict (no-target) runs, where victim *order* is
  /// unobservable, and keeps the legacy path-order walk when a byte target
  /// makes the order part of its documented semantics.
  kAuto,
  /// Trie walk per pass (the seed behaviour; the bench baseline).
  kWalk,
  /// Range queries against the Vfs's atime-ordered purge index; ActiveDR's
  /// retrospective passes become cursor advances over candidates
  /// materialized once per group (scan-once).
  kIndexed,
};

/// Bytes a purge run must free so that used space drops to
/// `target_utilization` x capacity. Zero when already below target.
std::uint64_t purge_target_bytes(const fs::Vfs& vfs, double target_utilization);

/// Count users holding >= 1 file per report group (the "Users" denominator
/// of Fig. 11), written into `report.by_group[*].users_total`.
void fill_users_total(PurgeReport& report, const fs::Vfs& vfs,
                      const GroupOf& group_of);

/// Populate retained bytes/files per group from post-purge Vfs accounting.
void fill_retained_stats(PurgeReport& report, const fs::Vfs& vfs,
                         const GroupOf& group_of);

}  // namespace adr::retention
