#pragma once
// Shared retention-policy vocabulary.
//
// A policy run purges files from a Vfs at a trigger time, optionally until a
// purge target is met. Targets follow the paper's convention: the
// administrator states the space utilization the scratch space should reach
// (e.g. 50% of capacity); the byte deficit between current usage and that
// target is what a run must free.

#include <cstdint>

#include "fs/vfs.hpp"
#include "retention/report.hpp"

namespace adr::retention {

/// Bytes a purge run must free so that used space drops to
/// `target_utilization` x capacity. Zero when already below target.
std::uint64_t purge_target_bytes(const fs::Vfs& vfs, double target_utilization);

/// Count users holding >= 1 file per report group (the "Users" denominator
/// of Fig. 11), written into `report.by_group[*].users_total`.
void fill_users_total(PurgeReport& report, const fs::Vfs& vfs,
                      const GroupOf& group_of);

/// Populate retained bytes/files per group from post-purge Vfs accounting.
void fill_retained_stats(PurgeReport& report, const fs::Vfs& vfs,
                         const GroupOf& group_of);

}  // namespace adr::retention
