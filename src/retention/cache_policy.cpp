#include "retention/cache_policy.hpp"

#include <vector>

namespace adr::retention {

ScratchCachePolicy::ScratchCachePolicy(ScratchCacheConfig config)
    : config_(config), group_of_([](trace::UserId) {
        return activeness::UserGroup::kBothInactive;
      }) {}

void ScratchCachePolicy::set_group_of(GroupOf group_of) {
  group_of_ = std::move(group_of);
}

PurgeReport ScratchCachePolicy::run(fs::Vfs& vfs, util::TimePoint now,
                                    std::uint64_t /*target_purge_bytes*/) const {
  PurgeReport report;
  report.policy = name();
  report.when = now;
  report.target_purge_bytes = 0;  // the cache semantic has no byte target
  fill_users_total(report, vfs, group_of_);

  const util::Duration horizon = util::days(config_.in_use_horizon_days);
  struct Victim {
    std::string path;
    trace::UserId owner;
    std::uint64_t size;
  };
  std::vector<Victim> victims;
  vfs.for_each([&](const std::string& path, const fs::FileMeta& meta) {
    if (now - meta.atime > horizon) {
      victims.push_back({path, meta.owner, meta.size_bytes});
    }
  });

  std::vector<bool> seen_user;
  for (const auto& v : victims) {
    vfs.remove(v.path, v.owner);
    report.purged_bytes += v.size;
    ++report.purged_files;
    auto& g = report.group(group_of_(v.owner));
    g.purged_bytes += v.size;
    ++g.purged_files;
    if (v.owner != trace::kInvalidUser) {
      if (v.owner >= seen_user.size()) seen_user.resize(v.owner + 1, false);
      if (!seen_user[v.owner]) {
        seen_user[v.owner] = true;
        ++g.users_affected;
        report.affected_users.push_back(v.owner);
      }
    }
  }

  report.target_reached = true;
  fill_retained_stats(report, vfs, group_of_);
  return report;
}

}  // namespace adr::retention
