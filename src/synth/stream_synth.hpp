#pragma once
// Streaming workload synthesis for the million-user scale tier (DESIGN.md
// §15).
//
// The titan-model pipeline materializes every user's whole trace before
// replay — fine at 600 users, fatal at 10⁶ (the vectors alone would dwarf
// the structures being measured). StreamSynth instead emits one merged,
// time-ordered event stream from per-user forward-only cursors:
//
//   * each user's event sequence is a pure function of (seed, user_id) —
//     an evicted user's history can be re-derived from 8 bytes, which is
//     the regeneration contract behind Vfs residency;
//   * a binary min-heap over (next_event_time, user) yields the global
//     stream in nondecreasing (time, user) order with O(log U) per event
//     and O(U) resident state (one small cursor per user, no traces);
//   * file paths and sizes are pure functions of (user, ordinal) and
//     (seed, user, ordinal) — nothing about a file needs storing to be
//     recreated.
//
// Determinism anchor: materialize() produces the exact same events in the
// exact same order as draining next() — per-user times are strictly
// increasing and ties across users break by user id, so the global order
// (time, user) is total. bench_scale and the identity tests rely on this:
// streamed ingest (with residency on) and materialized replay must produce
// byte-identical ranks and purge victims.

#include <cstdint>
#include <string>
#include <vector>

#include "trace/types.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace adr::synth {

enum class StreamEventKind : std::uint8_t {
  kJobSubmit,     ///< operational activity (ActivityStore type 0)
  kPublication,   ///< occupational activity (ActivityStore type 1)
  kFileCreate,    ///< new file `ordinal` for `user`
  kFileAccess,    ///< atime bump on an existing ordinal
};

struct StreamEvent {
  util::TimePoint timestamp = 0;
  trace::UserId user = trace::kInvalidUser;
  StreamEventKind kind = StreamEventKind::kJobSubmit;
  std::uint32_t ordinal = 0;      ///< file ordinal (create/access)
  double impact = 0.0;            ///< activity weight (job/publication)
  std::uint64_t size_bytes = 0;   ///< file size (create)
};

struct StreamSynthConfig {
  std::size_t users = 600;
  std::uint64_t seed = 42;

  /// Simulated span: activity events land in [sim_begin, sim_begin + span].
  util::TimePoint sim_begin = 1'600'000'000;
  int sim_span_days = 30;

  /// Pre-existing files per user, created over the `backfill_days` before
  /// sim_begin (the purge population).
  std::size_t initial_files_per_user = 20;
  int backfill_days = 400;

  /// Mean activity events per user per simulated day; each user draws a
  /// personal rate around it (lognormal), so populations are heterogeneous.
  double events_per_user_day = 2.0;
};

class StreamSynth {
 public:
  explicit StreamSynth(const StreamSynthConfig& config);

  /// Produce the next event in global (time, user) order. Returns false
  /// when the stream is exhausted. O(log users); allocates nothing.
  bool next(StreamEvent& out);

  std::size_t emitted() const { return emitted_; }
  /// Total events this stream will yield (fixed at construction).
  std::size_t total_events() const { return total_events_; }

  /// Re-derive one user's entire sequence (in that user's time order) from
  /// (config.seed, user) alone — the regeneration contract: equals the
  /// `user`-owned subsequence of materialize(config).
  static std::vector<StreamEvent> user_sequence(const StreamSynthConfig& config,
                                                trace::UserId user);

  /// Materialized mode: the whole stream as one vector, in exactly the
  /// order next() yields. Small tiers only (the identity anchor).
  static std::vector<StreamEvent> materialize(const StreamSynthConfig& config);

  /// Canonical path of a user's ordinal-th file: under the synthetic
  /// registry's home dir ("/scratch/user_NNNNN/fK").
  static std::string path_of(trace::UserId user, std::uint32_t ordinal);

  /// File size as a pure function of (seed, user, ordinal): log-uniform in
  /// [4 KiB, 8 MiB].
  static std::uint64_t size_of(std::uint64_t seed, trace::UserId user,
                               std::uint32_t ordinal);

 private:
  /// Forward-only per-user generator; its whole life is a pure function of
  /// (seed, user). Holds the one pending (not yet emitted) event.
  struct Cursor {
    util::Rng rng{0};
    StreamEvent pending;
    std::uint32_t files = 0;          ///< ordinals created so far
    std::uint32_t backfill_left = 0;  ///< initial creates still to emit
    std::uint32_t activity_left = 0;  ///< in-span events still to emit
    double rate = 0.0;                ///< events per simulated second

    /// Generate the next pending event; false when the user is done.
    bool advance(const StreamSynthConfig& config, trace::UserId user);
  };

  static Cursor make_cursor(const StreamSynthConfig& config,
                            trace::UserId user);

  StreamSynthConfig config_;
  std::vector<Cursor> cursors_;  // dense by user id
  /// Min-heap of (pending timestamp, user), comparing (time, user).
  std::vector<std::pair<util::TimePoint, trace::UserId>> heap_;
  std::size_t emitted_ = 0;
  std::size_t total_events_ = 0;
};

}  // namespace adr::synth
