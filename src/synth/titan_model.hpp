#pragma once
// The scaled Titan/Spider II scenario builder — our substitute for the OLCF
// dataset of §4.1.1 (see DESIGN.md §2 for the substitution argument).
//
// A scenario bundles everything one paper-style experiment needs:
//   * job-scheduler log (2013 .. end of the replay year),
//   * publication list over the same span,
//   * the application log for the replay year,
//   * a metadata snapshot of the scratch state at the replay start —
//     already the result of the facility's 90-day FLT retention, exactly as
//     the paper's last-weekly-of-2015 snapshot was,
//   * the user registry and the behaviour population behind it all.

#include <cstdint>

#include "sched/batch_scheduler.hpp"
#include "synth/app_log_synth.hpp"
#include "synth/pub_synth.hpp"
#include "synth/user_model.hpp"
#include "trace/app_log.hpp"
#include "trace/job_log.hpp"
#include "trace/publication_log.hpp"
#include "trace/snapshot.hpp"
#include "trace/user_registry.hpp"

namespace adr::synth {

struct TitanParams {
  /// Population size (the real system had 13,813; default is a ~1/9 scale).
  std::size_t users = 1500;
  std::uint64_t seed = 42;

  int trace_start_year = 2013;  ///< job/publication history begins here
  int replay_year = 2016;       ///< the year the emulator replays

  PopulationMix mix = PopulationMix::titan_default();

  /// The facility FLT lifetime already applied to the initial snapshot.
  int flt_prepurge_days = 90;

  /// Per-file size cap (0 = unlimited). At scaled-down population sizes a
  /// single multi-TiB file would dominate the byte dynamics; Titan-scale
  /// snapshots average ~34 MB/file, so no one file matters there.
  std::uint64_t max_file_bytes = 128ull << 30;  // 128 GiB

  
  /// utilization when the paper's last-2015 snapshot was taken (~28 PB
  /// retained of 32 PB), so the snapshot does not fill the system.
  double capacity_headroom = 2.0;

  /// Storage growth knob: brand-new output files per job beyond the initial
  /// tree. Most of these are write-once dumps — the churn that fills HPC
  /// scratch with purgeable-without-misses bytes.
  double extra_files_per_job = 0.4;

  /// Run the merged submission stream through the batch-scheduler substrate
  /// (FCFS + EASY backfill), producing start times, waits and completion
  /// status alongside the job log.
  bool schedule_jobs = true;
  /// Scheduler sizing; nodes == 0 scales the machine to the population
  /// (Titan ran ~1.35 nodes per registered user).
  sched::SchedulerConfig scheduler{0, 16, 0.03, 1.5, 1};
};

struct TitanScenario {
  trace::UserRegistry registry;
  UserPopulation population;

  trace::JobLog jobs;            ///< full span, time-sorted, ids assigned
  /// Scheduling outcome per job (same order as jobs.records()); empty when
  /// TitanParams::schedule_jobs is off.
  std::vector<sched::ScheduledJob> schedule;
  /// The scheduler configuration actually used (node sentinel resolved).
  sched::SchedulerConfig scheduler_used;
  trace::PublicationLog pubs;    ///< full span, time-sorted
  trace::AppLog replay;          ///< entries within the replay year only
  trace::Snapshot snapshot;      ///< scratch state at replay start

  util::TimePoint trace_begin = 0;
  util::TimePoint sim_begin = 0;  ///< == snapshot instant
  util::TimePoint sim_end = 0;

  /// The paper's "total capacity": the synthesized size of every file in
  /// the initial snapshot.
  std::uint64_t capacity_bytes = 0;
};

TitanScenario build_titan_scenario(const TitanParams& params);

}  // namespace adr::synth
