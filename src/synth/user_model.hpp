#pragma once
// User behaviour archetypes for the synthetic Titan population.
//
// The paper's trace analysis shows a heavily skewed population: <1% of users
// are active on both operations and outcomes, a few percent on one of the
// two, and >92% are inactive (Fig. 5). We reproduce that skew with six
// archetypes whose mixing fractions and activity rates are the calibration
// knobs. Every user gets a concrete parameter draw (a UserProfile) from its
// archetype's ranges, so the population is heterogeneous within archetypes
// too.

#include <array>
#include <cstddef>
#include <vector>

#include "trace/types.hpp"
#include "util/rng.hpp"

namespace adr::synth {

enum class Archetype {
  kHeavyBoth = 0,      ///< steady jobs + publications (targets G1)
  kOperationHeavy = 1, ///< steady jobs, rarely publishes (targets G2)
  kOutcomeHeavy = 2,   ///< publishes, sporadic jobs (targets G3)
  kCasual = 3,         ///< episodic work with long revisit gaps (FLT misses)
  kDormant = 4,        ///< a few old jobs, rarely returns (bulk of G4)
  kToucher = 5,        ///< games FLT by touching files just under the
                       ///< lifetime without doing real work (§1/§2)
};

inline constexpr std::size_t kArchetypeCount = 6;

const char* archetype_name(Archetype a);

/// Concrete behaviour parameters of one user.
struct UserProfile {
  trace::UserId user = trace::kInvalidUser;
  Archetype archetype = Archetype::kDormant;

  // Job arrival process: alternating active episodes and idle gaps.
  double job_rate_per_day = 0.1;  ///< Poisson rate within an episode
  double episode_days_mean = 14.0;
  double gap_days_mean = 90.0;    ///< revisit gap (lognormal median)
  double gap_days_sigma = 0.6;    ///< lognormal sigma of the gap

  // Job shape.
  double cores_log_mean = 4.0;    ///< ln cores ~ N(mean, sigma)
  double cores_log_sigma = 1.2;
  double duration_log_mean = 8.0; ///< ln seconds ~ N(mean, sigma)
  double duration_log_sigma = 1.0;

  // Outcomes: expected lead-author publications over the whole trace.
  double pubs_total_mean = 0.0;

  // Scratch contents.
  std::size_t file_count = 20;
  double working_set_fraction = 0.3;  ///< share of a project touched per job
  /// Mean re-reads of recently-used inputs per job (temporal locality).
  /// Heavy campaign users re-read their working set constantly — their
  /// hit-dominated traffic is what keeps facility-wide daily miss ratios
  /// low; sporadic users contribute little traffic but most of the misses.
  double hot_accesses_per_job = 1.0;

  /// Fraction of files that are write-once output dumps: created by a job
  /// and never read again. HPC scratch is dominated by such data — it is
  /// what a deep purge can reclaim without causing file misses.
  double dead_file_fraction = 0.5;

  /// Non-zero for kToucher: touch every file this often (days), just under
  /// the facility lifetime, independent of real work.
  int touch_interval_days = 0;

  /// When the account joined the system, as a fraction of the trace span
  /// (0 = present since trace start, 0.9 = joined near the end). Real HPC
  /// populations churn; short-tenure users have few activeness periods
  /// (small m in Eq. 1), which is where most of Fig. 5's active quadrants
  /// come from.
  double tenure_fraction = 0.0;

  /// Output dumps rotate through a bounded set of checkpoint slots per
  /// project (ckpt_000..ckpt_NNN overwritten in a cycle), so a user's
  /// footprint plateaus instead of growing without bound.
  int dump_rotation_depth = 16;
};

/// Archetype mixing fractions (must sum to ~1).
struct PopulationMix {
  std::array<double, kArchetypeCount> fraction{};

  /// Calibrated to reproduce Fig. 5's group percentages at d = 90:
  /// G1 ~0.9%, G2 ~3.5%, G3 ~2.9%, G4 ~92.7%.
  static PopulationMix titan_default();
};

class UserPopulation {
 public:
  /// Draw `n` profiles from the mix. Deterministic given `rng`'s state.
  static UserPopulation generate(std::size_t n, const PopulationMix& mix,
                                 util::Rng& rng);

  const std::vector<UserProfile>& profiles() const { return profiles_; }
  const UserProfile& profile(trace::UserId user) const;
  std::size_t size() const { return profiles_.size(); }

  std::array<std::size_t, kArchetypeCount> archetype_counts() const;

 private:
  std::vector<UserProfile> profiles_;
};

}  // namespace adr::synth
