#include "synth/stream_synth.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace adr::synth {

namespace {

/// Independent 64-bit stream root for one user: a splitmix64 chain over the
/// run seed and the user id. Position-independent by construction (unlike
/// Rng::fork, which consumes parent state).
std::uint64_t user_seed(std::uint64_t seed, trace::UserId user) {
  std::uint64_t s =
      seed ^ (0xA24BAED4963EE407ULL * (static_cast<std::uint64_t>(user) + 1));
  return util::splitmix64(s);
}

std::uint64_t hash3(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = seed ^ (a * 0x9E3779B97F4A7C15ULL) ^
                    (b * 0xD6E8FEB86659FD93ULL);
  return util::splitmix64(s);
}

}  // namespace

std::string StreamSynth::path_of(trace::UserId user, std::uint32_t ordinal) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/scratch/user_%05u/f%u", user, ordinal);
  return buf;
}

std::uint64_t StreamSynth::size_of(std::uint64_t seed, trace::UserId user,
                                   std::uint32_t ordinal) {
  const std::uint64_t h = hash3(seed, user, ordinal);
  // Log-uniform over [4 KiB, 8 MiB]: shift 4 KiB by 0..11 doublings, then
  // add sub-doubling jitter so sizes are not all powers of two.
  const std::uint64_t base = std::uint64_t{4096} << (h % 12);
  return base + ((h >> 8) % base);
}

StreamSynth::Cursor StreamSynth::make_cursor(const StreamSynthConfig& config,
                                             trace::UserId user) {
  Cursor c;
  c.rng.reseed(user_seed(config.seed, user));
  // Personal activity rate around the configured mean (lognormal spread,
  // sigma 0.5 — active users a few times the mean, lurkers well under it).
  const double rate_per_day =
      config.events_per_user_day * std::exp(c.rng.normal(0.0, 0.5));
  c.rate = rate_per_day / static_cast<double>(util::kSecondsPerDay);
  c.backfill_left = static_cast<std::uint32_t>(config.initial_files_per_user);
  const double span_days = static_cast<double>(config.sim_span_days);
  c.activity_left = static_cast<std::uint32_t>(
      c.rng.poisson(rate_per_day * span_days));
  // The first pending event starts the backfill just after the window
  // opens; advance() walks it forward from there.
  c.pending.timestamp =
      config.sim_begin - util::days(config.backfill_days);
  return c;
}

bool StreamSynth::Cursor::advance(const StreamSynthConfig& config,
                                  trace::UserId user) {
  StreamEvent e;
  e.user = user;
  if (backfill_left > 0) {
    // Backfill creates: spread over the pre-span window, strictly
    // increasing. Jitter stays in (0.4, 1.0) of the even stride so the
    // worst-case sum (count/(count+1) of the window) still lands before
    // sim_begin.
    const double window =
        static_cast<double>(util::days(config.backfill_days));
    const double per_file =
        window / static_cast<double>(config.initial_files_per_user + 1);
    const auto dt = static_cast<util::Duration>(
        std::max(1.0, per_file * rng.uniform(0.4, 1.0)));
    e.timestamp = pending.timestamp + dt;
    e.kind = StreamEventKind::kFileCreate;
    e.ordinal = files++;
    e.size_bytes = size_of(config.seed, user, e.ordinal);
    --backfill_left;
    pending = e;
    return true;
  }
  if (activity_left == 0) return false;
  // In-span activity: exponential inter-arrivals at the personal rate,
  // clamped to keep per-user times strictly increasing (the global
  // (time, user) order must be total for stream/materialize identity).
  const util::TimePoint floor_time = std::max(
      pending.timestamp + 1, config.sim_begin);
  const auto dt = static_cast<util::Duration>(
      std::max(1.0, rng.exponential(std::max(rate, 1e-9))));
  e.timestamp = std::max(floor_time, pending.timestamp + dt);
  const double kind_draw = rng.uniform();
  if (kind_draw < 0.45) {
    e.kind = StreamEventKind::kJobSubmit;
    e.impact = rng.uniform(0.5, 50.0);
  } else if (kind_draw < 0.50) {
    e.kind = StreamEventKind::kPublication;
    e.impact = rng.uniform(0.5, 10.0);
  } else if (kind_draw < 0.60 || files == 0) {
    e.kind = StreamEventKind::kFileCreate;
    e.ordinal = files++;
    e.size_bytes = size_of(config.seed, user, e.ordinal);
  } else {
    e.kind = StreamEventKind::kFileAccess;
    e.ordinal = static_cast<std::uint32_t>(rng.bounded(files));
  }
  --activity_left;
  pending = e;
  return true;
}

StreamSynth::StreamSynth(const StreamSynthConfig& config) : config_(config) {
  cursors_.reserve(config.users);
  heap_.reserve(config.users);
  for (std::size_t u = 0; u < config.users; ++u) {
    const auto user = static_cast<trace::UserId>(u);
    Cursor c = make_cursor(config, user);
    total_events_ += c.backfill_left + c.activity_left;
    if (c.advance(config, user)) {
      heap_.push_back({c.pending.timestamp, user});
    }
    cursors_.push_back(std::move(c));
  }
  const auto later = [](const std::pair<util::TimePoint, trace::UserId>& a,
                        const std::pair<util::TimePoint, trace::UserId>& b) {
    return a > b;  // min-heap on (time, user)
  };
  std::make_heap(heap_.begin(), heap_.end(), later);
}

bool StreamSynth::next(StreamEvent& out) {
  const auto later = [](const std::pair<util::TimePoint, trace::UserId>& a,
                        const std::pair<util::TimePoint, trace::UserId>& b) {
    return a > b;
  };
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), later);
  const trace::UserId user = heap_.back().second;
  heap_.pop_back();
  Cursor& c = cursors_[user];
  out = c.pending;
  ++emitted_;
  if (c.advance(config_, user)) {
    heap_.push_back({c.pending.timestamp, user});
    std::push_heap(heap_.begin(), heap_.end(), later);
  }
  return true;
}

std::vector<StreamEvent> StreamSynth::user_sequence(
    const StreamSynthConfig& config, trace::UserId user) {
  std::vector<StreamEvent> out;
  Cursor c = make_cursor(config, user);
  out.reserve(c.backfill_left + c.activity_left);
  while (c.advance(config, user)) out.push_back(c.pending);
  return out;
}

std::vector<StreamEvent> StreamSynth::materialize(
    const StreamSynthConfig& config) {
  std::vector<StreamEvent> all;
  for (std::size_t u = 0; u < config.users; ++u) {
    const auto seq =
        user_sequence(config, static_cast<trace::UserId>(u));
    all.insert(all.end(), seq.begin(), seq.end());
  }
  // Per-user times are strictly increasing, so a stable sort on (time,
  // user) reproduces the heap-merge order exactly.
  std::sort(all.begin(), all.end(),
            [](const StreamEvent& a, const StreamEvent& b) {
              return a.timestamp != b.timestamp ? a.timestamp < b.timestamp
                                                : a.user < b.user;
            });
  return all;
}

}  // namespace adr::synth
