#include "synth/pub_synth.hpp"

#include <algorithm>
#include <cmath>

namespace adr::synth {

trace::PublicationLog synthesize_publications(const UserPopulation& population,
                                              const PubSynthParams& params,
                                              util::Rng& rng) {
  trace::PublicationLog log;
  const std::size_t n = population.size();
  std::uint64_t next_id = 1;

  // Authorship concentrates: publishing users form small collaboration
  // teams, and a team's publications cluster inside a campaign window.
  // Both properties matter for the Fig. 5 shape — a user's publication
  // activities must span few periods (clustered ⇒ small m in Eq. 1 ⇒
  // outcome-active), and co-authorship must not leak across the whole
  // population (uniform sampling would make far too many users
  // outcome-active).
  std::vector<trace::UserId> pool;
  for (const auto& p : population.profiles()) {
    if (p.pubs_total_mean >= 0.5) pool.push_back(p.user);
  }
  for (std::size_t i = pool.size(); i > 1; --i) {
    std::swap(pool[i - 1], pool[rng.bounded(i)]);
  }
  constexpr std::size_t kTeamSize = 5;
  const std::size_t team_count = pool.empty() ? 0 : (pool.size() - 1) / kTeamSize + 1;
  std::vector<std::size_t> team_of(n, static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < pool.size(); ++i) {
    team_of[pool[i]] = i / kTeamSize;
  }
  // Each team's campaign window: an epoch plus ~4 months of spread.
  std::vector<util::TimePoint> team_epoch(team_count);
  for (auto& epoch : team_epoch) {
    epoch = params.begin + static_cast<util::TimePoint>(
        rng.uniform(0.1, 0.95) *
        static_cast<double>(params.end - params.begin));
  }

  auto team_members = [&](std::size_t team) {
    std::vector<trace::UserId> members;
    for (std::size_t i = team * kTeamSize;
         i < std::min(pool.size(), (team + 1) * kTeamSize); ++i) {
      members.push_back(pool[i]);
    }
    return members;
  };

  for (const auto& profile : population.profiles()) {
    if (profile.pubs_total_mean <= 0.0) continue;
    const std::int64_t count = rng.poisson(profile.pubs_total_mean);
    if (count == 0) continue;

    const std::size_t team = team_of[profile.user] != static_cast<std::size_t>(-1)
                                 ? team_of[profile.user]
                                 : (team_count ? rng.bounded(team_count) : 0);
    const util::TimePoint epoch =
        team_count ? team_epoch[team]
                   : params.begin + (params.end - params.begin) / 2;

    for (std::int64_t k = 0; k < count; ++k) {
      trace::PublicationRecord pub;
      pub.pub_id = next_id++;
      pub.published = std::clamp<util::TimePoint>(
          epoch + static_cast<util::Duration>(rng.normal(0.0, 120.0) * 86400),
          params.begin, params.end - 1);
      // Power-law citations; most publications have few, a handful many.
      pub.citations = static_cast<std::int32_t>(
          std::min(rng.pareto(1.0, params.citation_pareto_alpha) - 1.0, 500.0));

      // Lead author first; co-authors mostly teammates, occasionally an
      // outsider (a student or external collaborator).
      pub.authors.push_back(profile.user);
      const auto members = team_count ? team_members(team)
                                      : std::vector<trace::UserId>{};
      const std::int64_t coauthors = rng.uniform_int(0, params.max_coauthors);
      for (std::int64_t c = 0; c < coauthors; ++c) {
        const trace::UserId other =
            !members.empty() && rng.bernoulli(0.95)
                ? members[rng.bounded(members.size())]
                : static_cast<trace::UserId>(rng.bounded(n));
        if (std::find(pub.authors.begin(), pub.authors.end(), other) ==
            pub.authors.end()) {
          pub.authors.push_back(other);
        }
      }
      log.add(std::move(pub));
    }
  }
  log.sort_by_time();
  return log;
}

}  // namespace adr::synth
