#pragma once
// Per-user scratch tree synthesis: directory layout, stripe counts, and
// synthesized sizes (fs/striping.hpp). A user's files are organized into
// projects — the unit the access synthesizer uses for working sets.

#include <string>
#include <vector>

#include "synth/user_model.hpp"

namespace adr::synth {

/// One synthesized file (not yet placed in a Vfs).
struct FileSpec {
  std::string path;
  std::int32_t stripe_count = 1;
  std::uint64_t size_bytes = 0;
  std::size_t project = 0;  ///< index of the project directory it lives in
};

/// A user's synthesized scratch contents.
struct UserTree {
  std::vector<FileSpec> files;      ///< grouped by project, project-major
  std::size_t project_count = 0;
};

/// Generate the scratch tree for one user under `home`
/// (e.g. "/scratch/user_00042"). Deterministic given `rng`.
/// `max_file_bytes` (0 = unlimited) clamps synthesized sizes — small-scale
/// scenarios must cap the heavy tail or a single multi-TiB file dominates
/// the byte dynamics (at Titan scale, 935M files average ~34 MB, so no one
/// file matters; a scaled-down population needs the same property).
UserTree synthesize_user_tree(const UserProfile& profile,
                              const std::string& home, util::Rng& rng,
                              std::uint64_t max_file_bytes = 0);

/// Generate one extra output file for `project` (used for files created
/// during replay). `ordinal` keeps paths unique.
FileSpec synthesize_extra_file(const std::string& home, std::size_t project,
                               std::size_t ordinal, util::Rng& rng,
                               std::uint64_t max_file_bytes = 0);

}  // namespace adr::synth
