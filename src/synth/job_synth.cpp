#include "synth/job_synth.hpp"

#include <algorithm>
#include <cmath>

namespace adr::synth {

std::vector<trace::JobRecord> synthesize_user_jobs(const UserProfile& profile,
                                                   util::TimePoint begin,
                                                   util::TimePoint end,
                                                   util::Rng& rng) {
  std::vector<trace::JobRecord> jobs;
  const double day = static_cast<double>(util::kSecondsPerDay);

  auto draw_gap = [&] {
    // Lognormal around the profile's revisit gap.
    const double gap_days = rng.lognormal(std::log(profile.gap_days_mean),
                                          profile.gap_days_sigma);
    return gap_days * day;
  };

  // Random initial phase so users don't all start aligned at `begin`.
  double t = static_cast<double>(begin) + rng.uniform() * draw_gap();

  while (t < static_cast<double>(end)) {
    // One active episode.
    const double episode_len =
        rng.exponential(1.0 / profile.episode_days_mean) * day;
    const double episode_end =
        std::min(t + episode_len, static_cast<double>(end));
    while (t < episode_end) {
      trace::JobRecord job;
      job.user = profile.user;
      job.submit_time = static_cast<util::TimePoint>(t);
      const double dur =
          rng.lognormal(profile.duration_log_mean, profile.duration_log_sigma);
      job.duration_seconds =
          static_cast<std::int64_t>(std::clamp(dur, 60.0, 86400.0));
      const double cores =
          rng.lognormal(profile.cores_log_mean, profile.cores_log_sigma);
      job.cores = static_cast<std::int32_t>(std::clamp(cores, 1.0, 262144.0));
      jobs.push_back(job);

      t += rng.exponential(profile.job_rate_per_day) * day;
    }
    t = episode_end + draw_gap();
  }
  return jobs;
}

}  // namespace adr::synth
