#pragma once
// Publication-list synthesis (the outcome-activity trace). Lead authors are
// drawn from each profile's pubs_total_mean; co-authors are sampled from the
// whole population — which is exactly how moderately-active users end up in
// the Outcome-Active-Only quadrant of Fig. 5. Citations follow a power law.

#include "synth/user_model.hpp"
#include "trace/publication_log.hpp"

namespace adr::synth {

struct PubSynthParams {
  util::TimePoint begin = 0;
  util::TimePoint end = 0;
  double citation_pareto_alpha = 1.1;  ///< heavy-tailed citation counts
  int max_coauthors = 6;
};

trace::PublicationLog synthesize_publications(const UserPopulation& population,
                                              const PubSynthParams& params,
                                              util::Rng& rng);

}  // namespace adr::synth
