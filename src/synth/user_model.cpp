#include "synth/user_model.hpp"

#include <cmath>
#include <stdexcept>

namespace adr::synth {

const char* archetype_name(Archetype a) {
  switch (a) {
    case Archetype::kHeavyBoth: return "heavy-both";
    case Archetype::kOperationHeavy: return "operation-heavy";
    case Archetype::kOutcomeHeavy: return "outcome-heavy";
    case Archetype::kCasual: return "casual";
    case Archetype::kDormant: return "dormant";
    case Archetype::kToucher: return "toucher";
  }
  return "?";
}

PopulationMix PopulationMix::titan_default() {
  PopulationMix mix;
  mix.fraction[static_cast<std::size_t>(Archetype::kHeavyBoth)] = 0.020;
  mix.fraction[static_cast<std::size_t>(Archetype::kOperationHeavy)] = 0.035;
  mix.fraction[static_cast<std::size_t>(Archetype::kOutcomeHeavy)] = 0.022;
  mix.fraction[static_cast<std::size_t>(Archetype::kCasual)] = 0.120;
  mix.fraction[static_cast<std::size_t>(Archetype::kDormant)] = 0.783;
  mix.fraction[static_cast<std::size_t>(Archetype::kToucher)] = 0.020;
  return mix;
}

namespace {

UserProfile draw_profile(Archetype a, util::Rng& rng) {
  UserProfile p;
  p.archetype = a;
  switch (a) {
    case Archetype::kHeavyBoth:
      p.job_rate_per_day = rng.uniform(0.25, 0.60);
      p.episode_days_mean = rng.uniform(40.0, 100.0);
      p.gap_days_mean = rng.uniform(3.0, 10.0);
      p.gap_days_sigma = 0.4;
      p.pubs_total_mean = rng.uniform(0.7, 1.8);
      p.file_count = static_cast<std::size_t>(rng.uniform_int(60, 300));
      p.working_set_fraction = rng.uniform(0.10, 0.25);
      p.dead_file_fraction = rng.uniform(0.35, 0.55);
      p.hot_accesses_per_job = rng.uniform(8.0, 16.0);
      break;
    case Archetype::kOperationHeavy:
      p.job_rate_per_day = rng.uniform(0.30, 0.90);
      p.episode_days_mean = rng.uniform(30.0, 80.0);
      p.gap_days_mean = rng.uniform(3.0, 12.0);
      p.gap_days_sigma = 0.4;
      p.pubs_total_mean = 0.05;
      p.file_count = static_cast<std::size_t>(rng.uniform_int(40, 200));
      p.working_set_fraction = rng.uniform(0.15, 0.30);
      p.dead_file_fraction = rng.uniform(0.40, 0.60);
      p.hot_accesses_per_job = rng.uniform(8.0, 16.0);
      break;
    case Archetype::kOutcomeHeavy:
      p.job_rate_per_day = rng.uniform(0.02, 0.08);
      p.episode_days_mean = rng.uniform(7.0, 20.0);
      p.gap_days_mean = rng.uniform(60.0, 160.0);
      p.gap_days_sigma = 0.7;
      p.pubs_total_mean = rng.uniform(0.8, 1.8);
      p.file_count = static_cast<std::size_t>(rng.uniform_int(20, 100));
      p.working_set_fraction = rng.uniform(0.15, 0.30);
      p.dead_file_fraction = rng.uniform(0.60, 0.80);
      p.hot_accesses_per_job = rng.uniform(1.0, 3.0);
      break;
    case Archetype::kCasual:
      p.job_rate_per_day = rng.uniform(0.05, 0.25);
      p.episode_days_mean = rng.uniform(7.0, 21.0);
      p.gap_days_mean = rng.uniform(50.0, 200.0);
      p.gap_days_sigma = 0.8;
      p.pubs_total_mean = 0.04;
      p.file_count = static_cast<std::size_t>(rng.uniform_int(10, 80));
      p.working_set_fraction = rng.uniform(0.15, 0.30);
      p.dead_file_fraction = rng.uniform(0.65, 0.85);
      p.hot_accesses_per_job = rng.uniform(1.0, 3.0);
      break;
    case Archetype::kDormant:
      // "Dormant" in the activeness sense, not absent: low-key background
      // writers whose activity never *rises*, so Eq. 5 classifies them
      // inactive — yet their steady stream of write-once dumps is the bulk
      // of what the scratch space holds. This matches the paper's data: the
      // Both-Inactive 95% retained ~20 PB under a 90-day FLT, i.e. they
      // kept writing within the lifetime without being "active".
      p.job_rate_per_day = rng.uniform(0.05, 0.20);
      p.episode_days_mean = rng.uniform(4.0, 12.0);
      p.gap_days_mean = rng.uniform(20.0, 70.0);
      p.gap_days_sigma = 0.6;
      p.pubs_total_mean = 0.015;
      p.file_count = static_cast<std::size_t>(rng.uniform_int(20, 120));
      p.working_set_fraction = rng.uniform(0.03, 0.10);
      p.dead_file_fraction = rng.uniform(0.90, 0.98);
      p.hot_accesses_per_job = rng.uniform(0.5, 1.5);
      break;
    case Archetype::kToucher:
      p.job_rate_per_day = rng.uniform(0.01, 0.05);
      p.episode_days_mean = rng.uniform(4.0, 10.0);
      p.gap_days_mean = rng.uniform(150.0, 400.0);
      p.gap_days_sigma = 0.7;
      p.pubs_total_mean = 0.0;
      p.file_count = static_cast<std::size_t>(rng.uniform_int(30, 150));
      p.working_set_fraction = rng.uniform(0.10, 0.20);
      // Touch cadence sits just under typical facility lifetimes so FLT
      // keeps renewing the files.
      p.touch_interval_days = static_cast<int>(rng.uniform_int(55, 85));
      p.dead_file_fraction = rng.uniform(0.85, 0.95);
      p.hot_accesses_per_job = rng.uniform(0.2, 0.8);
      break;
  }
  // Account tenure: roughly half the population predates the trace; the
  // rest joined at a uniform point (never within ~4 months of its end).
  p.tenure_fraction = rng.bernoulli(0.5) ? 0.0 : rng.uniform(0.0, 0.9);
  p.dump_rotation_depth = static_cast<int>(rng.uniform_int(8, 40));

  // Job shape: cores median ~e^4 = 55, durations median ~e^8 = 3000 s.
  p.cores_log_mean = rng.uniform(3.0, 5.5);
  p.cores_log_sigma = rng.uniform(0.8, 1.5);
  p.duration_log_mean = rng.uniform(7.0, 9.5);
  p.duration_log_sigma = rng.uniform(0.7, 1.3);
  return p;
}

}  // namespace

UserPopulation UserPopulation::generate(std::size_t n,
                                        const PopulationMix& mix,
                                        util::Rng& rng) {
  double total = 0.0;
  for (double f : mix.fraction) total += f;
  if (total <= 0.0)
    throw std::invalid_argument("UserPopulation: empty population mix");

  UserPopulation pop;
  pop.profiles_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Roulette-wheel archetype draw.
    double u = rng.uniform() * total;
    std::size_t a = 0;
    for (; a + 1 < kArchetypeCount; ++a) {
      if (u < mix.fraction[a]) break;
      u -= mix.fraction[a];
    }
    util::Rng user_rng = rng.fork(i);
    UserProfile p = draw_profile(static_cast<Archetype>(a), user_rng);
    p.user = static_cast<trace::UserId>(i);
    pop.profiles_.push_back(p);
  }
  return pop;
}

const UserProfile& UserPopulation::profile(trace::UserId user) const {
  if (user >= profiles_.size())
    throw std::out_of_range("UserPopulation: bad user id");
  return profiles_[user];
}

std::array<std::size_t, kArchetypeCount> UserPopulation::archetype_counts()
    const {
  std::array<std::size_t, kArchetypeCount> counts{};
  for (const auto& p : profiles_) {
    ++counts[static_cast<std::size_t>(p.archetype)];
  }
  return counts;
}

}  // namespace adr::synth
