#include "synth/app_log_synth.hpp"

#include <algorithm>
#include <cmath>
#include <string_view>
#include <unordered_map>

namespace adr::synth {

namespace {

/// Record one touch of file `fi` at time `t`, emitting a create entry on the
/// first touch and an access entry afterwards.
struct TouchRecorder {
  UserActivityTrace& out;
  trace::UserId user;
  util::TimePoint snapshot_time;

  void touch(std::size_t fi, util::TimePoint t) {
    const FileSpec& spec = out.all_files[fi];
    trace::AppLogEntry e;
    e.user = user;
    e.timestamp = t;
    e.path = spec.path;
    if (out.created_at[fi] < 0) {
      out.created_at[fi] = t;
      e.op = trace::FileOp::kCreate;
      e.size_bytes = spec.size_bytes;
      e.stripe_count = spec.stripe_count;
    } else {
      e.op = trace::FileOp::kAccess;
    }
    if (t <= snapshot_time) out.atime_at_snapshot[fi] = t;
    out.entries.push_back(std::move(e));
  }
};

}  // namespace

UserActivityTrace synthesize_user_activity(
    const UserProfile& profile, const std::string& home, UserTree tree,
    const std::vector<trace::JobRecord>& jobs, const AppSynthParams& params,
    util::Rng& rng) {
  UserActivityTrace out;
  out.all_files = std::move(tree.files);
  const std::size_t projects = std::max<std::size_t>(tree.project_count, 1);
  out.created_at.assign(out.all_files.size(), -1);
  out.atime_at_snapshot.assign(out.all_files.size(), -1);

  TouchRecorder rec{out, profile.user, params.snapshot_time};

  // Bucket initial files by project and shuffle each bucket into its
  // introduction order.
  std::vector<std::vector<std::size_t>> project_files(projects);
  for (std::size_t i = 0; i < out.all_files.size(); ++i) {
    project_files[out.all_files[i].project % projects].push_back(i);
  }
  for (auto& bucket : project_files) {
    for (std::size_t i = bucket.size(); i > 1; --i) {
      std::swap(bucket[i - 1], bucket[rng.bounded(i)]);
    }
  }

  // Walk jobs: assign projects (sticky within an episode), count jobs per
  // project so introductions can be spread over them.
  std::vector<std::size_t> job_project(jobs.size());
  {
    std::size_t current = rng.bounded(projects);
    util::TimePoint prev = jobs.empty() ? 0 : jobs.front().submit_time;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const bool long_gap =
          jobs[j].submit_time - prev > 30 * util::kSecondsPerDay;
      if (long_gap || rng.bernoulli(0.08)) current = rng.bounded(projects);
      job_project[j] = current;
      prev = jobs[j].submit_time;
    }
  }
  std::vector<std::size_t> jobs_in_project(projects, 0);
  for (std::size_t p : job_project) ++jobs_in_project[p];

  // Introductions per project-job: spread the initial files over the first
  // ~70% of the project's jobs so most of the tree exists well before the
  // trace end (mirrors scratch contents accumulated over prior years).
  std::vector<double> intro_per_job(projects, 0.0);
  for (std::size_t p = 0; p < projects; ++p) {
    const double active_jobs =
        std::max(1.0, 0.7 * static_cast<double>(jobs_in_project[p]));
    intro_per_job[p] =
        static_cast<double>(project_files[p].size()) / active_jobs;
  }
  std::vector<std::size_t> intro_next(projects, 0);   // next file to introduce
  std::vector<double> intro_credit(projects, 0.0);    // fractional carry
  // Output dumps rotate through a bounded slot set per project (checkpoint
  // rotation): once `dump_rotation_depth` dumps exist, new dumps overwrite
  // the oldest slot instead of growing the tree without bound.
  std::vector<std::vector<std::size_t>> dump_slots(projects);
  std::vector<std::size_t> dump_cursor(projects, 0);
  std::size_t extra_ordinal = 0;
  const std::size_t rotation_depth = static_cast<std::size_t>(
      std::max(1, profile.dump_rotation_depth));

  // Live working sets per project. Write-once output dumps ("dead" files)
  // are created and never read again; only live files are re-accessed by
  // later jobs. Dead data is what a deep purge reclaims without misses.
  std::vector<std::vector<std::size_t>> live(projects);

  auto introduce = [&](std::size_t fi, std::size_t p, util::TimePoint t) {
    rec.touch(fi, t);
    if (!rng.bernoulli(profile.dead_file_fraction)) {
      live[p].push_back(fi);
    }
  };

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const util::TimePoint t = jobs[j].submit_time;
    const std::size_t p = job_project[j];
    auto& bucket = project_files[p];

    // Introduce this job's share of initial files (create entries).
    intro_credit[p] += intro_per_job[p];
    while (intro_credit[p] >= 1.0 && intro_next[p] < bucket.size()) {
      intro_credit[p] -= 1.0;
      introduce(bucket[intro_next[p]++], p, t);
    }

    // Access a working-set sample of the project's live files, weighted
    // toward recent introductions: users mostly work on what they produced
    // lately, with a thin uniform tail over the project's history. (Uniform
    // sampling would keep "remembering" files purged years ago and inflate
    // miss counts with zombies no real user would still read.)
    const std::size_t live_count = live[p].size();
    if (live_count > 0) {
      std::size_t ws = static_cast<std::size_t>(std::ceil(
          profile.working_set_fraction * static_cast<double>(live_count)));
      ws = std::min(ws, live_count);
      for (std::size_t k = 0; k < ws; ++k) {
        std::size_t back =
            static_cast<std::size_t>(rng.exponential(0.15));  // mean ~7 back
        if (back >= live_count) back = rng.bounded(live_count);
        rec.touch(live[p][live_count - 1 - back], t);
      }
      // Temporal locality: every run re-reads the handful of inputs the
      // previous runs used. This hit-heavy traffic is what keeps real
      // facilities' daily miss ratios in the low percent range (Fig. 1).
      const std::int64_t hot = rng.poisson(profile.hot_accesses_per_job);
      const std::size_t hot_window = std::min<std::size_t>(5, live_count);
      for (std::int64_t k = 0; k < hot; ++k) {
        rec.touch(live[p][live_count - 1 - rng.bounded(hot_window)], t);
      }
    }

    // Output dumps: new checkpoint slots until the rotation depth is
    // reached, then overwrites of the oldest slot (an access entry — the
    // path already exists, its atime refreshes).
    const std::int64_t extras = rng.poisson(params.extra_files_per_job);
    for (std::int64_t k = 0; k < extras; ++k) {
      if (dump_slots[p].size() < rotation_depth) {
        FileSpec spec = synthesize_extra_file(home, p, extra_ordinal++, rng,
                                              params.max_file_bytes);
        out.all_files.push_back(std::move(spec));
        out.created_at.push_back(-1);
        out.atime_at_snapshot.push_back(-1);
        const std::size_t fi = out.all_files.size() - 1;
        dump_slots[p].push_back(fi);
        introduce(fi, p, t);
      } else {
        const std::size_t fi =
            dump_slots[p][dump_cursor[p]++ % dump_slots[p].size()];
        rec.touch(fi, t);
      }
    }
  }

  // Toucher behaviour: renew every introduced file's atime periodically,
  // independent of real work.
  if (profile.touch_interval_days > 0 && !out.all_files.empty()) {
    const util::Duration interval = util::days(profile.touch_interval_days);
    for (util::TimePoint t = params.begin + interval / 2 +
                             static_cast<util::TimePoint>(
                                 rng.uniform() * static_cast<double>(interval));
         t < params.end; t += interval) {
      for (std::size_t fi = 0; fi < out.all_files.size(); ++fi) {
        if (out.created_at[fi] >= 0 && out.created_at[fi] <= t) {
          rec.touch(fi, t);
        }
      }
    }
  }

  std::stable_sort(out.entries.begin(), out.entries.end(),
                   [](const trace::AppLogEntry& a, const trace::AppLogEntry& b) {
                     return a.timestamp < b.timestamp;
                   });
  // atime_at_snapshot tracking in TouchRecorder assumed time-ordered calls;
  // toucher events were appended out of order, so recompute with one
  // ordered pass.
  std::fill(out.atime_at_snapshot.begin(), out.atime_at_snapshot.end(),
            static_cast<util::TimePoint>(-1));
  {
    std::unordered_map<std::string_view, std::size_t> by_path;
    by_path.reserve(out.all_files.size() * 2);
    for (std::size_t fi = 0; fi < out.all_files.size(); ++fi) {
      by_path.emplace(out.all_files[fi].path, fi);
    }
    for (const auto& e : out.entries) {
      if (e.timestamp > params.snapshot_time) break;
      const auto it = by_path.find(e.path);
      if (it != by_path.end()) out.atime_at_snapshot[it->second] = e.timestamp;
    }
  }
  return out;
}

}  // namespace adr::synth
