#include "synth/fs_synth.hpp"

#include <cstdio>

#include "fs/striping.hpp"

namespace adr::synth {

namespace {

const char* const kDirNames[] = {"run", "data", "out", "ckpt", "analysis"};
const char* const kFileStems[] = {"out", "dump", "snap", "mesh", "traj",
                                  "spectra", "field", "log"};
const char* const kFileExts[] = {".h5", ".dat", ".nc", ".bin", ".bp"};

std::string project_dir(const std::string& home, std::size_t project) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/proj%02zu", project);
  return home + buf;
}

}  // namespace

namespace {

std::uint64_t clamp_size(std::uint64_t size, std::uint64_t max_bytes) {
  return max_bytes > 0 && size > max_bytes ? max_bytes : size;
}

}  // namespace

UserTree synthesize_user_tree(const UserProfile& profile,
                              const std::string& home, util::Rng& rng,
                              std::uint64_t max_file_bytes) {
  UserTree tree;
  // 1..5 projects, larger users hold more.
  const std::size_t projects = static_cast<std::size_t>(
      rng.uniform_int(1, profile.file_count > 100 ? 5 : 3));
  tree.project_count = projects;
  tree.files.reserve(profile.file_count);

  // Distribute files over projects (first projects get more).
  std::vector<std::size_t> per_project(projects, 0);
  for (std::size_t f = 0; f < profile.file_count; ++f) {
    const double u = rng.uniform();
    // Geometric-ish preference for earlier projects.
    std::size_t p = 0;
    double acc = 0.5;
    while (p + 1 < projects && u > acc) {
      acc += (1.0 - acc) * 0.5;
      ++p;
    }
    ++per_project[p];
  }

  for (std::size_t p = 0; p < projects; ++p) {
    const std::string proj = project_dir(home, p);
    // Each project has a handful of run directories.
    const std::size_t runs =
        static_cast<std::size_t>(rng.uniform_int(1, 6));
    for (std::size_t f = 0; f < per_project[p]; ++f) {
      const std::size_t run = rng.bounded(runs);
      const char* dir = kDirNames[rng.bounded(std::size(kDirNames))];
      const char* stem = kFileStems[rng.bounded(std::size(kFileStems))];
      const char* ext = kFileExts[rng.bounded(std::size(kFileExts))];
      char leaf[96];
      std::snprintf(leaf, sizeof(leaf), "/%s_%03zu/%s_%04zu%s", dir, run, stem,
                    f, ext);
      FileSpec spec;
      spec.path = proj + leaf;
      spec.stripe_count = fs::sample_stripe_count(rng);
      spec.size_bytes =
          clamp_size(fs::synthesize_size(spec.stripe_count, rng),
                     max_file_bytes);
      spec.project = p;
      tree.files.push_back(std::move(spec));
    }
  }
  return tree;
}

FileSpec synthesize_extra_file(const std::string& home, std::size_t project,
                               std::size_t ordinal, util::Rng& rng,
                               std::uint64_t max_file_bytes) {
  char leaf[64];
  std::snprintf(leaf, sizeof(leaf), "/new/out_%06zu.h5", ordinal);
  FileSpec spec;
  spec.path = project_dir(home, project) + leaf;
  spec.stripe_count = fs::sample_stripe_count(rng);
  spec.size_bytes = clamp_size(fs::synthesize_size(spec.stripe_count, rng),
                               max_file_bytes);
  spec.project = project;
  return spec;
}

}  // namespace adr::synth
