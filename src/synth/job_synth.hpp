#pragma once
// Job-stream synthesis: alternating active episodes (Poisson job arrivals)
// and idle gaps (lognormal), the renewal process that creates the revisit
// gaps behind the paper's FLT file-miss analysis (Fig. 1).

#include <vector>

#include "synth/user_model.hpp"
#include "trace/types.hpp"

namespace adr::synth {

/// Jobs of one user over [begin, end), time-sorted. job_id is left 0; the
/// orchestrator assigns globally unique ids after merging users.
std::vector<trace::JobRecord> synthesize_user_jobs(const UserProfile& profile,
                                                   util::TimePoint begin,
                                                   util::TimePoint end,
                                                   util::Rng& rng);

}  // namespace adr::synth
