#include "synth/titan_model.hpp"

#include <algorithm>

#include "synth/job_synth.hpp"
#include "util/logging.hpp"

namespace adr::synth {

TitanScenario build_titan_scenario(const TitanParams& params) {
  TitanScenario scenario;
  scenario.trace_begin = util::from_civil(params.trace_start_year, 1, 1);
  scenario.sim_begin = util::from_civil(params.replay_year, 1, 1);
  scenario.sim_end = util::from_civil(params.replay_year + 1, 1, 1);

  util::Rng rng(params.seed);
  scenario.registry = trace::UserRegistry::with_synthetic_users(params.users);
  scenario.population =
      UserPopulation::generate(params.users, params.mix, rng);

  AppSynthParams app_params;
  app_params.begin = scenario.trace_begin;
  app_params.end = scenario.sim_end;
  app_params.snapshot_time = scenario.sim_begin;
  app_params.extra_files_per_job = params.extra_files_per_job;
  app_params.max_file_bytes = params.max_file_bytes;

  const util::Duration prepurge = util::days(params.flt_prepurge_days);

  for (const auto& profile : scenario.population.profiles()) {
    util::Rng user_rng = rng.fork(0x517AF00DULL + profile.user);
    const std::string home = scenario.registry.home_dir(profile.user);

    UserTree tree =
        synthesize_user_tree(profile, home, user_rng, params.max_file_bytes);
    // Account tenure: a late joiner's history starts partway through the
    // trace (never within ~4 months of the snapshot, so everyone has some
    // state to retain).
    const util::TimePoint latest_join = scenario.sim_begin - util::days(120);
    const util::TimePoint user_begin =
        scenario.trace_begin +
        static_cast<util::Duration>(
            profile.tenure_fraction *
            static_cast<double>(latest_join - scenario.trace_begin));
    std::vector<trace::JobRecord> jobs = synthesize_user_jobs(
        profile, user_begin, scenario.sim_end, user_rng);

    UserActivityTrace activity = synthesize_user_activity(
        profile, home, std::move(tree), jobs, app_params, user_rng);

    for (auto& job : jobs) scenario.jobs.add(std::move(job));

    // Initial snapshot: files that existed at sim_begin and survived the
    // facility's FLT (atime within the pre-purge lifetime).
    for (std::size_t fi = 0; fi < activity.all_files.size(); ++fi) {
      const util::TimePoint atime = activity.atime_at_snapshot[fi];
      if (atime < 0) continue;  // not created yet at the snapshot
      if (scenario.sim_begin - atime > prepurge) continue;  // FLT-purged
      const FileSpec& spec = activity.all_files[fi];
      trace::SnapshotEntry e;
      e.path = spec.path;
      e.owner = profile.user;
      e.stripe_count = spec.stripe_count;
      e.size_bytes = spec.size_bytes;
      e.atime = atime;
      scenario.snapshot.add(std::move(e));
    }

    // Replay log: the replay year's entries only.
    for (auto& entry : activity.entries) {
      if (entry.timestamp > scenario.sim_begin &&
          entry.timestamp < scenario.sim_end) {
        scenario.replay.add(std::move(entry));
      }
    }
  }

  scenario.jobs.sort_by_time();
  scenario.jobs.assign_ids();

  if (params.schedule_jobs) {
    sched::SchedulerConfig sched_config = params.scheduler;
    if (sched_config.nodes == 0) {
      sched_config.nodes = std::max<std::int64_t>(
          64, static_cast<std::int64_t>(
                  static_cast<double>(params.users) * 1.35));
    }
    scenario.schedule = sched::schedule(scenario.jobs, sched_config);
    scenario.scheduler_used = sched_config;
  }

  scenario.replay.sort_by_time();

  PubSynthParams pub_params;
  pub_params.begin = scenario.trace_begin;
  pub_params.end = scenario.sim_end;
  scenario.pubs =
      synthesize_publications(scenario.population, pub_params, rng);

  scenario.capacity_bytes = static_cast<std::uint64_t>(
      static_cast<double>(scenario.snapshot.total_bytes()) *
      params.capacity_headroom);

  ADR_INFO << "Titan scenario: " << params.users << " users, "
           << scenario.jobs.size() << " jobs, " << scenario.pubs.size()
           << " publications, " << scenario.snapshot.size()
           << " snapshot files, " << scenario.replay.size()
           << " replay entries";
  return scenario;
}

}  // namespace adr::synth
