#pragma once
// Application-log synthesis: turns a user's job stream into file accesses.
//
// Each job works inside one project (sticky across an episode, switching
// after long gaps), touches a working-set sample of the files already
// introduced there, and introduces the project's remaining initial files
// over the job history; occasionally it creates brand-new output files
// (storage growth during replay). Toucher users additionally emit periodic
// touch-all events that renew atimes without real work — the FLT-gaming
// behaviour of §1.

#include <vector>

#include "synth/fs_synth.hpp"
#include "trace/types.hpp"

namespace adr::synth {

struct AppSynthParams {
  util::TimePoint begin = 0;          ///< trace start (first possible access)
  util::TimePoint end = 0;            ///< trace end (exclusive)
  util::TimePoint snapshot_time = 0;  ///< state-capture instant (atime probe)
  /// Expected brand-new files per job beyond the initial tree.
  double extra_files_per_job = 0.05;
  /// Size clamp for dump files (0 = unlimited; see fs_synth.hpp).
  std::uint64_t max_file_bytes = 0;
};

/// Everything synthesized for one user.
struct UserActivityTrace {
  /// Time-sorted accesses/creates over [begin, end).
  std::vector<trace::AppLogEntry> entries;
  /// Initial tree plus files created along the way.
  std::vector<FileSpec> all_files;
  /// Per all_files index: creation instant (first touch), or -1 if the file
  /// was never introduced by any job.
  std::vector<util::TimePoint> created_at;
  /// Per all_files index: last access at or before snapshot_time, or -1 if
  /// the file did not exist yet at the snapshot.
  std::vector<util::TimePoint> atime_at_snapshot;
};

UserActivityTrace synthesize_user_activity(
    const UserProfile& profile, const std::string& home, UserTree tree,
    const std::vector<trace::JobRecord>& jobs, const AppSynthParams& params,
    util::Rng& rng);

}  // namespace adr::synth
