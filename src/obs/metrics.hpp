#pragma once
// Lightweight metrics: registry-backed counters, gauges, and fixed-bucket
// latency histograms.
//
// Design constraints (this is the substrate every perf PR reports through):
//  * Hot-path updates are single relaxed atomic RMWs — no locks, no
//    allocation, TSan-clean. Robinhood-style policy engines live or die by
//    their accounting instrumentation being cheap enough to leave on.
//  * Metric objects are owned by the registry and never move or disappear,
//    so call sites resolve a name to a reference once (function-local
//    static) and update through it forever. reset() zeroes values in place
//    and never invalidates references.
//  * Reads are snapshot-on-read: snapshot()/to_json() walk the registry
//    under its registration mutex and load each atomic; concurrent writers
//    are never blocked.
//
// Naming convention: `component.phase` (e.g. "policy.scan",
// "vfs.creates", "threadpool.queue_wait"). See DESIGN.md "Observability".

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace adr::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, bytes resident, ...).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket latency histogram over seconds. Bucket upper bounds are
/// log-spaced (x4) from 1 microsecond to 256 seconds plus an overflow
/// bucket, which covers everything from a trie lookup to a full-trace
/// replay without per-instance configuration.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 16;  // last bucket = +inf

  /// Upper bound (seconds, inclusive) of bucket `i`; +inf for the last.
  static double bucket_bound(std::size_t i) noexcept;

  void observe(double seconds) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum_seconds() const noexcept {
    return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  double max_seconds() const noexcept {
    return static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Estimate the q-th quantile (q in [0, 1]) from the bucket counts:
  /// locate the bucket holding the q-th observation and interpolate
  /// log-linearly between its bounds (the buckets are x4 log-spaced, so
  /// geometric interpolation is the unbiased choice). The overflow bucket
  /// anchors on max_seconds. Returns 0 for an empty histogram. The result
  /// is monotone in q and always within [0, max_seconds].
  double quantile(double q) const noexcept;

  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_nanos_{0};
  std::atomic<std::uint64_t> max_nanos_{0};
};

/// Point-in-time copy of every registered metric (what to_json serializes).
struct MetricsSnapshot {
  struct HistogramData {
    std::uint64_t count = 0;
    double sum_seconds = 0.0;
    double max_seconds = 0.0;
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
  };

  /// Same estimator as Histogram::quantile, over an already-taken snapshot.
  static double quantile(const HistogramData& h, double q) noexcept;

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramData> histograms;
  /// Span timings (RAII timer spans) — histograms kept in their own
  /// namespace so phase attribution is separable from value histograms.
  std::map<std::string, HistogramData> spans;
};

/// Name -> metric registry. Registration (first lookup of a name) takes a
/// mutex; returned references stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  /// Histogram recording span durations; serialized under "spans".
  Histogram& span_histogram(const std::string& name);

  MetricsSnapshot snapshot() const;
  /// Serialize a snapshot as a JSON object with "counters", "gauges",
  /// "histograms", and "spans" sections.
  std::string to_json() const;

  /// Zero every metric in place. References handed out stay valid.
  void reset();

  /// The process-wide registry all subsystems report into by default.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Histogram>> spans_;
};

/// Serialize an already-taken snapshot (used by exporters that diff two
/// snapshots before printing).
std::string to_json(const MetricsSnapshot& snapshot);

}  // namespace adr::obs
