#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace adr::obs {

namespace {

// Upper bounds in nanoseconds for buckets 0..kBuckets-2; the final bucket
// is the +inf overflow. Log-spaced x4 from 1us to 256s.
constexpr std::array<std::uint64_t, Histogram::kBuckets - 1> kBoundsNanos = {
    1'000ull,            // 1us
    4'000ull,            // 4us
    16'000ull,           // 16us
    64'000ull,           // 64us
    256'000ull,          // 256us
    1'024'000ull,        // ~1ms
    4'096'000ull,        // ~4ms
    16'384'000ull,       // ~16ms
    65'536'000ull,       // ~65ms
    262'144'000ull,      // ~262ms
    1'048'576'000ull,    // ~1s
    4'194'304'000ull,    // ~4.2s
    16'777'216'000ull,   // ~16.8s
    67'108'864'000ull,   // ~67s
    268'435'456'000ull,  // ~268s
};

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

double Histogram::bucket_bound(std::size_t i) noexcept {
  if (i >= kBoundsNanos.size()) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(kBoundsNanos[i]) * 1e-9;
}

void Histogram::observe(double seconds) noexcept {
  if (!(seconds >= 0.0)) seconds = 0.0;  // also catches NaN
  const double nanos_d = seconds * 1e9;
  const std::uint64_t nanos =
      nanos_d >= 1.8e19 ? std::uint64_t{18'000'000'000'000'000'000ull}
                        : static_cast<std::uint64_t>(nanos_d);

  std::size_t bucket = kBuckets - 1;
  for (std::size_t i = 0; i < kBoundsNanos.size(); ++i) {
    if (nanos <= kBoundsNanos[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);

  std::uint64_t seen = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > seen && !max_nanos_.compare_exchange_weak(
                             seen, nanos, std::memory_order_relaxed,
                             std::memory_order_relaxed)) {
  }
}

double Histogram::quantile(double q) const noexcept {
  MetricsSnapshot::HistogramData d;
  d.count = count();
  d.max_seconds = max_seconds();
  for (std::size_t i = 0; i < kBuckets; ++i) d.buckets[i] = bucket_count(i);
  return MetricsSnapshot::quantile(d, q);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_nanos_.store(0, std::memory_order_relaxed);
  max_nanos_.store(0, std::memory_order_relaxed);
}

namespace {

template <typename Metric>
Metric& find_or_create(std::mutex& mutex,
                       std::map<std::string, std::unique_ptr<Metric>>& map,
                       const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = map[name];
  if (!slot) slot = std::make_unique<Metric>();
  return *slot;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  return find_or_create(mutex_, counters_, name);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return find_or_create(mutex_, gauges_, name);
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return find_or_create(mutex_, histograms_, name);
}

Histogram& MetricsRegistry::span_histogram(const std::string& name) {
  return find_or_create(mutex_, spans_, name);
}

namespace {

MetricsSnapshot::HistogramData snapshot_histogram(const Histogram& h) {
  MetricsSnapshot::HistogramData d;
  d.count = h.count();
  d.sum_seconds = h.sum_seconds();
  d.max_seconds = h.max_seconds();
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    d.buckets[i] = h.bucket_count(i);
  }
  return d;
}

}  // namespace

double MetricsSnapshot::quantile(const HistogramData& h, double q) noexcept {
  if (h.count == 0) return 0.0;
  if (!(q >= 0.0)) q = 0.0;  // also catches NaN
  if (q > 1.0) q = 1.0;
  // 1-based rank of the q-th observation; q = 0 maps to the first.
  const double target =
      std::max(1.0, q * static_cast<double>(h.count));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    const std::uint64_t n = h.buckets[i];
    if (n == 0) continue;
    if (static_cast<double>(cum) + static_cast<double>(n) >= target) {
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(n);
      const double lo = i == 0 ? 0.0 : Histogram::bucket_bound(i - 1);
      // The overflow bucket has no finite upper bound; the recorded maximum
      // is its only honest anchor.
      const double hi = i + 1 == Histogram::kBuckets
                            ? std::max(h.max_seconds, lo)
                            : Histogram::bucket_bound(i);
      double v;
      if (lo <= 0.0) {
        v = hi * frac;  // first bucket: no finite log anchor below
      } else if (hi <= lo) {
        v = lo;
      } else {
        v = lo * std::pow(hi / lo, frac);
      }
      // The bucket bound can overshoot the largest value actually seen.
      return std::min(v, std::max(h.max_seconds, 0.0));
    }
    cum += n;
  }
  return h.max_seconds;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = snapshot_histogram(*h);
  }
  for (const auto& [name, h] : spans_) {
    snap.spans[name] = snapshot_histogram(*h);
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, h] : spans_) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

namespace {

// Metric names are dot-separated identifiers, but escape defensively so the
// output is valid JSON for any registered name.
void append_json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void append_histogram_json(std::ostringstream& out,
                           const MetricsSnapshot::HistogramData& h) {
  out << "{\"count\": " << h.count
      << ", \"sum_seconds\": " << format_double(h.sum_seconds)
      << ", \"max_seconds\": " << format_double(h.max_seconds)
      << ", \"p50\": " << format_double(MetricsSnapshot::quantile(h, 0.50))
      << ", \"p99\": " << format_double(MetricsSnapshot::quantile(h, 0.99))
      << ", \"p999\": " << format_double(MetricsSnapshot::quantile(h, 0.999))
      << ", \"buckets\": [";
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (i > 0) out << ", ";
    out << "{\"le\": ";
    const double bound = Histogram::bucket_bound(i);
    if (std::isinf(bound)) {
      out << "\"inf\"";
    } else {
      out << format_double(bound);
    }
    out << ", \"count\": " << h.buckets[i] << "}";
  }
  out << "]}";
}

template <typename Map, typename EmitValue>
void append_section(std::ostringstream& out, const char* title,
                    const Map& map, const EmitValue& emit_value, bool last) {
  out << "  ";
  append_json_string(out, title);
  out << ": {";
  bool first = true;
  for (const auto& [name, value] : map) {
    if (!first) out << ",";
    first = false;
    out << "\n    ";
    append_json_string(out, name);
    out << ": ";
    emit_value(out, value);
  }
  if (!first) out << "\n  ";
  out << (last ? "}\n" : "},\n");
}

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\n";
  // All histograms share one bucket layout; publish it once so consumers
  // never have to re-derive bounds from bucket indices.
  out << "  \"bucket_bounds\": [";
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (i > 0) out << ", ";
    const double bound = Histogram::bucket_bound(i);
    if (std::isinf(bound)) {
      out << "\"inf\"";
    } else {
      out << format_double(bound);
    }
  }
  out << "],\n";
  append_section(out, "counters", snapshot.counters,
                 [](std::ostringstream& o, std::uint64_t v) { o << v; },
                 false);
  append_section(out, "gauges", snapshot.gauges,
                 [](std::ostringstream& o, std::int64_t v) { o << v; },
                 false);
  append_section(
      out, "histograms", snapshot.histograms,
      [](std::ostringstream& o, const MetricsSnapshot::HistogramData& h) {
        append_histogram_json(o, h);
      },
      false);
  append_section(
      out, "spans", snapshot.spans,
      [](std::ostringstream& o, const MetricsSnapshot::HistogramData& h) {
        append_histogram_json(o, h);
      },
      true);
  out << "}";
  return out.str();
}

std::string MetricsRegistry::to_json() const { return obs::to_json(snapshot()); }

}  // namespace adr::obs
