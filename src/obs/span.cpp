#include "obs/span.hpp"

#include <utility>

namespace adr::obs {

namespace {

// Raw pointers into live TimerSpan objects; entries are pushed/popped in
// strict LIFO order by the spans themselves (they are scoped objects).
thread_local std::vector<const TimerSpan*> t_span_stack;

}  // namespace

TimerSpan::TimerSpan(MetricsRegistry& registry, std::string name)
    : name_(std::move(name)),
      histogram_(&registry.span_histogram(name_)),
      start_(std::chrono::steady_clock::now()) {
  t_span_stack.push_back(this);
}

TimerSpan::TimerSpan(std::string name)
    : TimerSpan(MetricsRegistry::global(), std::move(name)) {}

TimerSpan::~TimerSpan() { stop(); }

double TimerSpan::stop() {
  const double elapsed = elapsed_seconds();
  if (stopped_) return elapsed;
  stopped_ = true;
  histogram_->observe(elapsed);
  // Spans are scoped objects, so this span is the innermost open one on
  // this thread; pop defensively by search in case stop() is called out of
  // order.
  for (auto it = t_span_stack.rbegin(); it != t_span_stack.rend(); ++it) {
    if (*it == this) {
      t_span_stack.erase(std::next(it).base());
      break;
    }
  }
  return elapsed;
}

double TimerSpan::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

std::vector<std::string> TimerSpan::current_stack() {
  std::vector<std::string> names;
  names.reserve(t_span_stack.size());
  for (const TimerSpan* span : t_span_stack) names.push_back(span->name());
  return names;
}

std::string TimerSpan::current_path() {
  std::string path;
  for (const TimerSpan* span : t_span_stack) {
    if (!path.empty()) path += '/';
    path += span->name();
  }
  return path;
}

}  // namespace adr::obs
