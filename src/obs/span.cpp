#include "obs/span.hpp"

#include <utility>

#include "util/memory.hpp"

namespace adr::obs {

namespace {

// Raw pointers into live TimerSpan objects; entries are pushed/popped in
// strict LIFO order by the spans themselves (they are scoped objects).
thread_local std::vector<const TimerSpan*> t_span_stack;

// Process-memory gauges sampled when a thread's *outermost* span closes —
// once per trigger/run boundary, not per nested phase, because each sample
// is a /proc/self/status read (~tens of µs).
void sample_process_memory() {
  static Gauge& rss = MetricsRegistry::global().gauge("proc.rss_bytes");
  static Gauge& peak = MetricsRegistry::global().gauge("proc.rss_peak_bytes");
  rss.set(static_cast<std::int64_t>(util::current_rss_bytes()));
  peak.set(static_cast<std::int64_t>(util::rss_peak()));
}

}  // namespace

TimerSpan::TimerSpan(MetricsRegistry& registry, std::string name)
    : name_(std::move(name)),
      histogram_(&registry.span_histogram(name_)),
      start_(std::chrono::steady_clock::now()) {
  t_span_stack.push_back(this);
}

TimerSpan::TimerSpan(std::string name)
    : TimerSpan(MetricsRegistry::global(), std::move(name)) {}

TimerSpan::~TimerSpan() { stop(); }

double TimerSpan::stop() {
  const double elapsed = elapsed_seconds();
  if (stopped_) return elapsed;
  stopped_ = true;
  histogram_->observe(elapsed);
  // Spans are scoped objects, so this span is the innermost open one on
  // this thread; pop defensively by search in case stop() is called out of
  // order.
  for (auto it = t_span_stack.rbegin(); it != t_span_stack.rend(); ++it) {
    if (*it == this) {
      t_span_stack.erase(std::next(it).base());
      break;
    }
  }
  if (t_span_stack.empty()) sample_process_memory();
  return elapsed;
}

double TimerSpan::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

std::vector<std::string> TimerSpan::current_stack() {
  std::vector<std::string> names;
  names.reserve(t_span_stack.size());
  for (const TimerSpan* span : t_span_stack) names.push_back(span->name());
  return names;
}

std::string TimerSpan::current_path() {
  std::string path;
  for (const TimerSpan* span : t_span_stack) {
    if (!path.empty()) path += '/';
    path += span->name();
  }
  return path;
}

}  // namespace adr::obs
