#pragma once
// RAII timer spans for phase attribution.
//
// A TimerSpan measures the wall time between construction and stop() (or
// destruction) and records it into a span histogram of a MetricsRegistry.
// Each thread keeps a stack of its active spans, so nested phases are
// attributable: `TimerSpan::current_path()` yields e.g.
// "policy.run/policy.scan" from inside the scan phase.
//
// Span names follow the `component.phase` convention (DESIGN.md
// "Observability"). Construction resolves the histogram once; the per-span
// cost is two steady_clock reads plus one histogram observe.

#include <chrono>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace adr::obs {

class TimerSpan {
 public:
  /// Open a span recording into `registry`'s span histogram `name`.
  TimerSpan(MetricsRegistry& registry, std::string name);
  /// Open a span against the global registry.
  explicit TimerSpan(std::string name);
  ~TimerSpan();

  TimerSpan(const TimerSpan&) = delete;
  TimerSpan& operator=(const TimerSpan&) = delete;

  /// Stop the span now, record its duration, and return it in seconds.
  /// Idempotent; the destructor becomes a no-op afterwards.
  double stop();

  /// Seconds elapsed so far (without stopping).
  double elapsed_seconds() const;

  const std::string& name() const { return name_; }

  /// Names of the calling thread's open spans, outermost first.
  static std::vector<std::string> current_stack();
  /// The open spans joined with '/' ("" when none) — the phase path used
  /// in log lines and debugging.
  static std::string current_path();

 private:
  std::string name_;
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
};

}  // namespace adr::obs
