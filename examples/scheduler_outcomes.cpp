// Scheduler outcomes: Table 2 lists "successful completion of a job" as an
// outcome-activity example. This example runs the synthetic submission
// stream through the batch-scheduler substrate and feeds *completions* to
// the engine as an outcome type — an activeness setup that needs nothing
// outside the HPC system (no publication database).
//
// Usage: ./scheduler_outcomes [--users N]

#include <cstdio>
#include <iostream>

#include "core/engine.hpp"
#include "synth/titan_model.hpp"
#include "util/config.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace adr;

int main(int argc, char** argv) {
  const util::Config cli = util::Config::from_args(argc, argv);
  synth::TitanParams params;
  params.users = static_cast<std::size_t>(cli.get_int("users", 300));
  params.seed = 7;

  std::cout << "Synthesizing and scheduling " << params.users
            << " users' job streams...\n";
  const synth::TitanScenario scenario = synth::build_titan_scenario(params);

  const auto stats = sched::summarize(scenario.schedule, scenario.scheduler_used);
  util::Table sched_table("Batch scheduler (FCFS + EASY backfill)");
  sched_table.set_headers({"Metric", "Value"});
  sched_table.add_row({"Jobs", util::fmt_int(static_cast<std::int64_t>(stats.jobs))});
  sched_table.add_row(
      {"Completed", util::fmt_int(static_cast<std::int64_t>(stats.completed))});
  sched_table.add_row(
      {"Failed", util::fmt_int(static_cast<std::int64_t>(stats.failed))});
  sched_table.add_row(
      {"Backfilled", util::fmt_int(static_cast<std::int64_t>(stats.backfilled))});
  sched_table.add_row(
      {"Mean wait", util::format_duration_seconds(stats.mean_wait_seconds)});
  sched_table.add_row(
      {"Utilization", util::format_percent(stats.utilization, 1)});
  sched_table.print(std::cout);

  // Engine setup: submissions are operations (core-hours), *completions*
  // are outcomes (impact = completed node-hours).
  core::Engine engine(scenario.registry, core::Engine::Options{});
  const auto submissions = engine.register_operation_type("job_submission");
  const auto completions =
      engine.register_outcome_type("job_completion", /*weight=*/1.0);
  engine.ingest_jobs(scenario.jobs, submissions);
  for (const auto& s : scenario.schedule) {
    if (!s.completed) continue;
    const double node_hours = static_cast<double>(s.nodes) *
                              static_cast<double>(s.runtime()) / 3600.0;
    engine.record(s.user, completions, s.end_time, node_hours);
  }

  engine.evaluate(scenario.sim_begin);
  const auto counts = engine.group_counts();
  util::Table matrix("Activeness with job completions as the outcome");
  matrix.set_headers({"Group", "Users"});
  for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
    matrix.add_row(
        {activeness::group_name(static_cast<activeness::UserGroup>(g)),
         util::fmt_int(static_cast<std::int64_t>(counts[g]))});
  }
  matrix.print(std::cout);

  std::cout << "With completions as outcomes, operation- and outcome-\n"
               "activeness correlate strongly (§5 discusses this choice:\n"
               "the paper deliberately picked publications to show an\n"
               "outcome *outside* the system's purview).\n";
  return 0;
}
