// Policy comparison: the paper's §4 experiment in miniature. Synthesizes a
// scaled Titan scenario, replays one year under FLT and under ActiveDR at
// the same 50% purge target, and prints the headline numbers (file-miss
// reduction, per-group impact).
//
// Usage: ./policy_comparison [--users N] [--seed S] [--lifetime D]

#include <cstdio>
#include <iostream>

#include "sim/experiment.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

using namespace adr;

int main(int argc, char** argv) {
  const util::Config cli = util::Config::from_args(argc, argv);
  synth::TitanParams params;
  params.users = static_cast<std::size_t>(cli.get_int("users", 400));
  params.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  std::cout << "Synthesizing a scaled Titan scenario (" << params.users
            << " users)...\n";
  const synth::TitanScenario scenario = synth::build_titan_scenario(params);
  std::printf("  %zu jobs, %zu publications, %zu snapshot files (%.1f TiB), "
              "%zu replay entries\n",
              scenario.jobs.size(), scenario.pubs.size(),
              scenario.snapshot.size(),
              static_cast<double>(scenario.capacity_bytes) / (1ull << 40),
              scenario.replay.size());

  sim::ExperimentConfig config;
  config.lifetime_days = static_cast<int>(cli.get_int("lifetime", 90));
  std::cout << "Replaying the year under FLT and ActiveDR ("
            << config.lifetime_days << "-day lifetime, 7-day trigger, 50% "
            << "purge target)...\n";
  const sim::ComparisonResult result = sim::run_comparison(scenario, config);

  util::Table table("Year-replay comparison");
  table.set_headers({"Metric", "FLT", "ActiveDR"});
  table.add_row({"File misses",
                 util::fmt_int(static_cast<std::int64_t>(result.flt.total_misses)),
                 util::fmt_int(static_cast<std::int64_t>(
                     result.activedr.total_misses))});
  table.add_row({"Purge triggers",
                 util::fmt_int(static_cast<std::int64_t>(result.flt.purges.size())),
                 util::fmt_int(static_cast<std::int64_t>(
                     result.activedr.purges.size()))});
  for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
    table.add_row(
        {std::string("Affected users: ") +
             activeness::group_name(static_cast<activeness::UserGroup>(g)),
         util::fmt_int(static_cast<std::int64_t>(
             result.flt.groups[g].unique_affected_users)),
         util::fmt_int(static_cast<std::int64_t>(
             result.activedr.groups[g].unique_affected_users))});
  }
  table.print(std::cout);

  const double reduction =
      result.flt.total_misses
          ? 100.0 *
                static_cast<double>(result.flt.total_misses -
                                    result.activedr.total_misses) /
                static_cast<double>(result.flt.total_misses)
          : 0.0;
  std::printf("ActiveDR reduced file misses by %.1f%% at the same purge "
              "target (paper: up to 37%% for both-active users).\n",
              reduction);
  return 0;
}
