// Purge exemption: the reservation-list workflow of §3.4.
//
// The administrator keeps a plain-text list of reserved paths; ActiveDR
// loads it into a compact prefix tree and skips those files during scans.
// Renaming a reserved file silently cancels the reservation — the paths are
// the contract.

#include <fstream>
#include <iostream>

#include "core/engine.hpp"

using namespace adr;

int main() {
  const util::TimePoint now = util::from_civil(2026, 7, 1);

  core::Engine::Options options;
  options.purge_target_utilization = 0.0;  // no byte target: purge all expired
  core::Engine engine(trace::UserRegistry::with_synthetic_users(2, "user"),
                      options);
  engine.register_operation_type("job_submission");
  engine.register_outcome_type("publication");

  // user0's scratch: three stale files (200 days old) plus a whole stale
  // "campaign" directory.
  auto stale = [&](const std::string& path, std::uint64_t mib) {
    fs::FileMeta meta;
    meta.owner = 0;
    meta.size_bytes = mib << 20;
    meta.atime = now - util::days(200);
    meta.ctime = meta.atime;
    engine.vfs().create(path, meta);
  };
  const std::string home = engine.registry().home_dir(0);
  stale(home + "/raw_input.dat", 100);
  stale(home + "/tmp_scratch.dat", 100);
  stale(home + "/campaign2025/run1/out.h5", 100);
  stale(home + "/campaign2025/run2/out.h5", 100);

  // The administrator's reservation file: one exact file plus a directory
  // subtree.
  const std::string list_path = "/tmp/activedr_reservations.txt";
  {
    std::ofstream out(list_path);
    out << "# reservation list, one path per line\n";
    out << home << "/raw_input.dat\n";
    out << home << "/campaign2025\n";  // exempts the whole subtree
  }
  const auto reservations = retention::ExemptionList::load(list_path);
  std::cout << "Loaded " << reservations.size() << " reservations:\n";
  for (const auto& p : reservations.reserved_paths()) {
    std::cout << "  " << p << "\n";
  }
  for (const auto& p : reservations.reserved_paths()) engine.reserve(p);

  // Purge with no byte target: everything beyond the 90-day lifetime goes —
  // except the reserved paths.
  const auto report = engine.purge(now);
  report.print(std::cout);

  std::cout << "raw_input.dat survived:        "
            << engine.vfs().exists(home + "/raw_input.dat") << "\n";
  std::cout << "campaign2025/run1/out.h5 kept: "
            << engine.vfs().exists(home + "/campaign2025/run1/out.h5") << "\n";
  std::cout << "tmp_scratch.dat purged:        "
            << !engine.vfs().exists(home + "/tmp_scratch.dat") << "\n";
  return 0;
}
