// Quickstart: the administrator's five-minute tour of the ActiveDR API.
//
//   1. Create an Engine over the site's user registry.
//   2. Register the activity types you already track (one-time setup).
//   3. Feed activities and the scratch-space snapshot.
//   4. Evaluate activeness, inspect the classification.
//   5. Trigger a purge and read the report.
//
// Build & run:  ./quickstart

#include <iostream>

#include "core/engine.hpp"

using namespace adr;

int main() {
  const util::TimePoint now = util::from_civil(2026, 7, 1);

  // 1. A small site with five users.
  auto registry = trace::UserRegistry::with_synthetic_users(5, "user");
  core::Engine::Options options;
  options.lifetime_days = 90;             // initial file lifetime d (Eq. 7)
  options.purge_target_utilization = 0.5; // purge down to 50% of capacity
  core::Engine engine(std::move(registry), options);

  // 2. Activity types: operations happen *on* the system, outcomes are what
  //    users produce by using it (§3.1).
  const auto jobs = engine.register_operation_type("job_submission");
  const auto pubs = engine.register_outcome_type("publication");

  // 3a. Activities. user0 has a rising job record (recent periods beat the
  //     historical average -> operation-active); user1 published recently;
  //     users 2-4 are silent.
  for (int period = 0; period < 3; ++period) {
    for (int k = 0; k < 3; ++k) {
      const double core_hours = period == 0 ? 200.0 : 100.0;
      engine.record(0, jobs, now - util::days(90 * period + 10 + 20 * k),
                    core_hours);
    }
  }
  engine.record(1, pubs, now - util::days(30), /*impact=*/12.0);  // Eq. 8

  // 3b. Scratch contents: everyone owns one 1 GiB file last touched 100
  //     days ago — older than the 90-day lifetime.
  const std::uint64_t gib = 1ull << 30;
  for (trace::UserId u = 0; u < 5; ++u) {
    fs::FileMeta meta;
    meta.owner = u;
    meta.size_bytes = gib;
    meta.atime = now - util::days(100);
    meta.ctime = meta.atime;
    engine.vfs().create(engine.registry().home_dir(u) + "/results.h5", meta);
  }
  engine.vfs().set_capacity_bytes(5 * gib);

  // 4. Evaluate and classify.
  const auto& ranks = engine.evaluate(now);
  std::cout << "User activeness at " << util::format_date(now) << ":\n";
  for (trace::UserId u = 0; u < 5; ++u) {
    const auto ua = ranks.get(u);
    std::cout << "  " << engine.registry().name(u) << ": "
              << activeness::group_name(activeness::classify(ua))
              << " (op rank " << ua.op.value() << ", outcome rank "
              << ua.oc.value() << ")\n";
  }

  // 5. Purge. Target: drop from 5 GiB to 2.5 GiB. ActiveDR visits inactive
  //    users first, so the three silent users lose their stale files while
  //    the active users keep theirs.
  const auto report = engine.purge(now);
  report.print(std::cout);

  std::cout << "Active users' files survived: "
            << engine.vfs().exists(engine.registry().home_dir(0) +
                                   "/results.h5")
            << engine.vfs().exists(engine.registry().home_dir(1) +
                                   "/results.h5")
            << " (1 = yes)\n";
  return 0;
}
