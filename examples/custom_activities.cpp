// Custom activity types: §3.1/Table 2 — administrators choose what counts
// as an operation or an outcome, with weights. Here a site tracks shell
// logins and data transfers as operations, and dataset publications plus
// completed workflow campaigns as outcomes.

#include <iostream>

#include "core/engine.hpp"

using namespace adr;

int main() {
  const util::TimePoint now = util::from_civil(2026, 7, 1);

  core::Engine engine(trace::UserRegistry::with_synthetic_users(3, "user"),
                      core::Engine::Options{});

  // One-time setup (Table 2): impacts are administrator-defined.
  const auto logins =
      engine.register_operation_type("shell_login", /*weight=*/0.1);
  const auto transfers =
      engine.register_operation_type("data_transfer_gib", /*weight=*/1.0);
  const auto datasets =
      engine.register_outcome_type("dataset_published", /*weight=*/25.0);
  const auto campaigns =
      engine.register_outcome_type("campaign_completed", /*weight=*/100.0);

  // user0: logs in daily and moves data, with transfers ramping up.
  for (int day = 1; day <= 270; ++day) {
    engine.record(0, logins, now - util::days(day), 1.0);
    const double gib = day <= 90 ? 50.0 : 20.0;  // recent 90d ramp-up
    if (day % 3 == 0) engine.record(0, transfers, now - util::days(day), gib);
  }
  // user1: few operations, but shipped a dataset and finished a campaign.
  engine.record(1, transfers, now - util::days(200), 5.0);
  engine.record(1, datasets, now - util::days(45), 1.0);
  engine.record(1, campaigns, now - util::days(40), 1.0);
  // user2: silent.

  const auto& ranks = engine.evaluate(now);
  std::cout << "Classification with site-specific activity types:\n";
  for (trace::UserId u = 0; u < 3; ++u) {
    const auto ua = ranks.get(u);
    std::cout << "  " << engine.registry().name(u) << " -> "
              << activeness::group_name(activeness::classify(ua))
              << "  (op " << ua.op.value() << ", outcome " << ua.oc.value()
              << (ua.fresh() ? ", fresh account" : "") << ")\n";
  }

  // The lifetime multiplier each user would get at the next purge (Eq. 7).
  std::cout << "\nEffective file lifetimes (initial 90 days):\n";
  for (trace::UserId u = 0; u < 3; ++u) {
    const double mult = activeness::lifetime_multiplier(
        ranks.get(u), activeness::LifetimeMode::kActiveCategoriesOnly);
    std::cout << "  " << engine.registry().name(u) << ": "
              << static_cast<int>(90 * mult) << " days\n";
  }
  (void)logins;
  (void)transfers;
  (void)datasets;
  (void)campaigns;
  return 0;
}
