// Touch gaming: why FLT is exploitable and ActiveDR is not (§1, §2).
//
// Two users, same amount of stale data:
//  * the "toucher" runs no jobs but touches every file every 80 days, so a
//    90-day FLT keeps renewing the files forever;
//  * the "worker" runs jobs steadily but paused for 4 months mid-project,
//    so FLT purges the paused project's files right before they're needed.
//
// ActiveDR inverts the outcome: the toucher has no operation/outcome
// activeness, so their hoarded files are first in the purge order, while the
// worker's rank extends the paused files' lifetime.

#include <iostream>

#include "retention/activedr_policy.hpp"
#include "retention/flt.hpp"
#include "util/table.hpp"

using namespace adr;

namespace {

constexpr std::uint64_t kGiB = 1ull << 30;

void fill_scratch(fs::Vfs& vfs, const trace::UserRegistry& registry,
                  util::TimePoint now) {
  // Toucher (user0): 10 files, "touched" 40 days ago by a crontab, not used
  // by any job for over a year.
  for (int i = 0; i < 10; ++i) {
    fs::FileMeta meta;
    meta.owner = 0;
    meta.size_bytes = kGiB;
    meta.atime = now - util::days(40);
    meta.ctime = now - util::days(500);
    vfs.create(registry.home_dir(0) + "/hoard/file" + std::to_string(i) +
                   ".dat",
               meta);
  }
  // Worker (user1): 10 files from a project paused 120 days ago.
  for (int i = 0; i < 10; ++i) {
    fs::FileMeta meta;
    meta.owner = 1;
    meta.size_bytes = kGiB;
    meta.atime = now - util::days(120);
    meta.ctime = now - util::days(400);
    vfs.create(registry.home_dir(1) + "/paused_project/part" +
                   std::to_string(i) + ".h5",
               meta);
  }
}

}  // namespace

int main() {
  const util::TimePoint now = util::from_civil(2026, 7, 1);
  const auto registry = trace::UserRegistry::with_synthetic_users(2, "user");

  // Activeness: user0 (toucher) has no job/publication record. user1
  // (worker) has a healthy, recently-rising job record.
  activeness::UserActiveness toucher;
  toucher.user = 0;
  toucher.op = activeness::Rank::from_value(0.0);
  toucher.oc = activeness::Rank::no_data();
  activeness::UserActiveness worker;
  worker.user = 1;
  worker.op = activeness::Rank::from_value(2.0);  // lifetime x2 = 180 days
  worker.oc = activeness::Rank::no_data();
  const auto plan = activeness::build_scan_plan({toucher, worker});

  // Both policies must free 10 GiB (half the scratch space).
  const std::uint64_t target = 10 * kGiB;

  // --- FLT: only expired files are candidates. The toucher's hoard was
  // "accessed" 40 days ago, so the worker's paused project is sacrificed.
  fs::Vfs flt_vfs;
  fill_scratch(flt_vfs, registry, now);
  const retention::FltPolicy flt(retention::FltConfig{90});
  flt.run(flt_vfs, now, target);

  // --- ActiveDR: the toucher sits in Both-Inactive and is scanned first;
  // the retrospective passes decay their lifetime (90d * 0.8^4 = 36.9d)
  // until the 40-day-old hoard qualifies. The worker is never reached.
  fs::Vfs adr_vfs;
  fill_scratch(adr_vfs, registry, now);
  const retention::ActiveDrPolicy adr(retention::ActiveDrConfig{}, registry);
  adr.run(adr_vfs, now, target, plan);

  util::Table table("Surviving files after one purge (10 each initially)");
  table.set_headers({"User", "Behaviour", "FLT keeps", "ActiveDR keeps"});
  auto count = [&](const fs::Vfs& vfs, trace::UserId u) {
    return std::to_string(vfs.usage(u).files);
  };
  table.add_row({"user00000", "touches files every 80d, never computes",
                 count(flt_vfs, 0), count(adr_vfs, 0)});
  table.add_row({"user00001", "active worker, project paused 120d",
                 count(flt_vfs, 1), count(adr_vfs, 1)});
  table.print(std::cout);

  std::cout
      << "FLT rewards the touch trick and punishes the paused project;\n"
         "ActiveDR extends the worker's lifetime (90d x rank 2 = 180d) and\n"
         "purges the toucher's unused hoard.\n";
  return 0;
}
